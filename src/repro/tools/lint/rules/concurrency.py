"""tangolock's static layer: lock-discipline rules TL010-TL013.

The paper's correctness argument (sections 3-4) assumes each client's
runtime serializes log playback against local reads, and the CORFU
protocol assumes the sequencer and storage units mutate their state
atomically per RPC. Our reproduction enforces both with plain
``threading.Lock``s, which Python checks not at all: a read of
``self._pages`` outside ``with self._lock`` compiles, passes single-
threaded tests, and loses updates only under the multi-client
interleavings the fault-injection suite produces once in a thousand
runs. These rules make the lock discipline machine-checked.

The shared engine here is a *lock-set analysis* over each class:

1. **Lock attributes** are ``self.<attr>`` assigned a
   ``threading.Lock()`` / ``RLock()`` / ``Condition()`` in
   ``__init__`` (inherited lock attributes count for subclasses
   defined in the linted program).
2. **Held sets**: inside ``with self._lock:`` the lock is held.
   Private helpers (leading underscore) are assumed to run with the
   *intersection* of the locks held at every intra-class call site —
   so a helper only ever invoked from inside critical sections is
   checked as if the lock were held, without annotation. A
   ``*_locked`` name suffix forces "all class locks held" as an
   explicit escape hatch. Public methods and dunders are entry points
   and start with nothing held. Helpers reachable only from
   ``__init__`` run before the object is shared and are exempt.
3. **Guarded attributes** (TL010): any attribute *written* under a
   lock is guarded by that lock; every other read/write of it must
   hold the guard.
4. **Lock-order graph** (TL011): acquiring B while holding A adds the
   edge ``A -> B``. Edges follow intra-class calls and — where
   ``__init__`` makes the attribute type inferable (direct
   construction or an annotated parameter) — cross-class calls. Any
   cycle is a potential ABBA deadlock.
5. **Blocking under a lock** (TL012): ``time.sleep``, ``.wait()``
   without a timeout, blocking ``.acquire()``, and transport RPCs
   (the TL009 op vocabulary) inside a critical section stall every
   thread contending for the lock.
6. **Lock lifecycle** (TL013): a lock created outside ``__init__`` or
   reassigned after construction races its own users — two threads
   can hold "the" lock simultaneously because they hold different
   objects.

Like every tangolint rule, a hand-verified exception is silenced with
``# tangolint: disable=TL01x`` plus a justifying comment.

``build_lock_graph`` is also the backend of the ``repro-lockcheck``
CLI, which renders the inferred hierarchy for docs/CONCURRENCY.md.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.tools.lint.engine import Diagnostic, ParsedModule, ProgramRule, Severity
from repro.tools.lint.rules.common import (
    MUTATING_METHODS,
    import_aliases,
    self_attr,
)
from repro.tools.lint.rules.net import _RPC_OPS

#: Constructor names recognized as lock factories. ``InstrumentedLock``
#: is the runtime sanitizer's wrapper (repro.tools.lockcheck).
LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition", "InstrumentedLock"})

#: Methods never checked for guarded-attribute discipline: construction
#: happens before the object is shared, __repr__/__del__ are
#: best-effort debug paths where a torn read is acceptable.
EXEMPT_METHODS = frozenset({"__init__", "__repr__", "__del__"})

#: Name suffix declaring "caller holds every lock of this class".
HELD_SUFFIX = "_locked"

_EMPTY: FrozenSet[str] = frozenset()


def _lock_factory_name(node: ast.AST) -> Optional[str]:
    """``Lock`` for ``threading.Lock()`` / bare ``RLock()`` etc."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr in LOCK_FACTORIES
        and isinstance(func.value, ast.Name)
    ):
        return func.attr
    if isinstance(func, ast.Name) and func.id in LOCK_FACTORIES:
        return func.id
    return None


def _annotation_class(node: Optional[ast.AST]) -> Optional[str]:
    """The class name an annotation refers to, if plainly spelled."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Subscript):  # Optional[X] / "X | None" etc.
        return _annotation_class(node.slice)
    return None


@dataclasses.dataclass
class _Access:
    node: ast.AST
    attr: str
    write: bool
    kind: str  # "read" | "assign" | "subscript" | "call"
    locks: FrozenSet[str]


@dataclasses.dataclass
class _Acquire:
    node: ast.AST
    attr: str
    locks: FrozenSet[str]  # held just outside this ``with``


@dataclasses.dataclass
class _CallSite:
    node: ast.AST
    receiver: Optional[str]  # None = self, else the self.<attr> receiver
    method: str
    locks: FrozenSet[str]


@dataclasses.dataclass
class _Blocking:
    node: ast.AST
    what: str
    locks: FrozenSet[str]


@dataclasses.dataclass
class _LockCreation:
    node: ast.AST
    attr: str


class _MethodScan:
    """One pass over a method body, tracking the with-lock context."""

    def __init__(
        self,
        lock_attrs: Set[str],
        aliases: Dict[str, Tuple[str, Optional[str]]],
        typed_attrs: Optional[Set[str]] = None,
    ) -> None:
        self.lock_attrs = lock_attrs
        self.aliases = aliases
        #: Attributes whose type is a known program class: method calls
        #: on them are calls into that class, not container mutations
        #: (``self._streams.append(...)`` appends to the shared log, it
        #: does not mutate a list named ``_streams``).
        self.typed_attrs = typed_attrs or set()
        self.accesses: List[_Access] = []
        self.acquires: List[_Acquire] = []
        self.calls: List[_CallSite] = []
        self.blocking: List[_Blocking] = []
        self.lock_creations: List[_LockCreation] = []

    def scan(self, fn: ast.AST) -> "_MethodScan":
        for stmt in fn.body:  # type: ignore[attr-defined]
            self._visit(stmt, _EMPTY)
        return self

    # -- helpers ---------------------------------------------------------

    def _children(self, node: ast.AST, locks: FrozenSet[str]) -> None:
        for child in ast.iter_child_nodes(node):
            self._visit(child, locks)

    def _record_write(
        self, node: ast.AST, attr: str, kind: str, locks: FrozenSet[str]
    ) -> None:
        self.accesses.append(_Access(node, attr, True, kind, locks))

    def _targets_of(self, node: ast.stmt) -> List[ast.expr]:
        if isinstance(node, ast.Assign):
            return list(node.targets)
        if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            return [node.target]
        if isinstance(node, ast.Delete):
            return list(node.targets)
        return []

    def _flatten(self, target: ast.expr) -> Iterator[ast.expr]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from self._flatten(element)
        else:
            yield target

    # -- the walk --------------------------------------------------------

    def _visit(self, node: ast.AST, locks: FrozenSet[str]) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = locks
            for item in node.items:
                self._visit(item.context_expr, locks)
                attr = self_attr(item.context_expr)
                if attr is not None and attr in self.lock_attrs:
                    self.acquires.append(_Acquire(item.context_expr, attr, inner))
                    inner = inner | {attr}
                if item.optional_vars is not None:
                    self._visit(item.optional_vars, locks)
            for stmt in node.body:
                self._visit(stmt, inner)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # Nested functions run later, from an unknown lock context;
            # analyze their bodies with nothing held.
            body = node.body if isinstance(node.body, list) else [node.body]
            for stmt in body:
                self._visit(stmt, _EMPTY)
            return
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)):
            for target in self._targets_of(node):
                for leaf in self._flatten(target):
                    attr = self_attr(leaf)
                    if attr is not None:
                        self._record_write(node, attr, "assign", locks)
                        value = getattr(node, "value", None)
                        factory = _lock_factory_name(value)
                        if factory is not None:
                            self.lock_creations.append(_LockCreation(node, attr))
                        continue
                    if isinstance(leaf, ast.Subscript):
                        attr = self_attr(leaf.value)
                        if attr is not None:
                            self._record_write(node, attr, "subscript", locks)
            self._children(node, locks)
            return
        if isinstance(node, ast.Call):
            self._classify_call(node, locks)
            self._children(node, locks)
            return
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.ctx, ast.Load)
            and self_attr(node) is not None
        ):
            self.accesses.append(_Access(node, node.attr, False, "read", locks))
            return
        self._visit_generic(node, locks)

    def _visit_generic(self, node: ast.AST, locks: FrozenSet[str]) -> None:
        self._children(node, locks)

    def _classify_call(self, node: ast.Call, locks: FrozenSet[str]) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            target = self.aliases.get(func.id)
            if target == ("time", "sleep"):
                self.blocking.append(_Blocking(node, "time.sleep", locks))
            return
        if not isinstance(func, ast.Attribute):
            return
        method = func.attr
        receiver = func.value
        if isinstance(receiver, ast.Name) and receiver.id == "self":
            # Intra-class call: never an RPC; mutating-container methods
            # on self itself do not occur on lock-holding classes here.
            self.calls.append(_CallSite(node, None, method, locks))
            return
        if (
            isinstance(receiver, ast.Call)
            and isinstance(receiver.func, ast.Name)
            and receiver.func.id == "super"
        ):
            # super().m() dispatches to self via the MRO — an intra-class
            # call for lock purposes, never an RPC.
            self.calls.append(_CallSite(node, None, method, locks))
            return
        recv_attr = self_attr(receiver)
        if recv_attr is not None:
            self.calls.append(_CallSite(node, recv_attr, method, locks))
            if method in MUTATING_METHODS and recv_attr not in self.typed_attrs:
                self._record_write(node, recv_attr, "call", locks)
        # Blocking classification applies to any non-self receiver.
        if method == "sleep":
            if isinstance(receiver, ast.Name) and self.aliases.get(
                receiver.id
            ) == ("time", None):
                self.blocking.append(_Blocking(node, "time.sleep", locks))
            return
        if method == "wait":
            has_timeout = bool(node.args) or any(
                kw.arg == "timeout" for kw in node.keywords
            )
            if not has_timeout:
                self.blocking.append(
                    _Blocking(node, "wait() without a timeout", locks)
                )
            return
        if method == "acquire":
            nonblocking = any(
                isinstance(arg, ast.Constant) and arg.value is False
                for arg in node.args[:1]
            ) or any(
                kw.arg == "blocking"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is False
                for kw in node.keywords
            )
            if not nonblocking:
                self.blocking.append(_Blocking(node, "blocking acquire()", locks))
            return
        if method in _RPC_OPS:
            self.blocking.append(_Blocking(node, f"RPC '{method}'", locks))


@dataclasses.dataclass
class _ClassAnalysis:
    module: ParsedModule
    node: ast.ClassDef
    name: str
    bases: List[str]
    methods: Dict[str, ast.AST]
    own_locks: Dict[str, ast.AST] = dataclasses.field(default_factory=dict)
    stray_locks: List[Tuple[ast.AST, str, str]] = dataclasses.field(
        default_factory=list
    )
    scans: Dict[str, _MethodScan] = dataclasses.field(default_factory=dict)
    own_attr_types: Dict[str, str] = dataclasses.field(default_factory=dict)
    # Resolved (inheritance-merged) views, filled by _Program:
    lock_attrs: Set[str] = dataclasses.field(default_factory=set)
    lock_owner: Dict[str, str] = dataclasses.field(default_factory=dict)
    attr_types: Dict[str, str] = dataclasses.field(default_factory=dict)
    guarded: Dict[str, Set[str]] = dataclasses.field(default_factory=dict)
    held: Dict[str, FrozenSet[str]] = dataclasses.field(default_factory=dict)
    construction_only: Set[str] = dataclasses.field(default_factory=set)

    def is_entry(self, method: str) -> bool:
        if method.startswith("__") and method.endswith("__"):
            return True
        return not method.startswith("_")


def _base_names(cls: ast.ClassDef) -> List[str]:
    names = []
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _own_methods(cls: ast.ClassDef) -> Dict[str, ast.AST]:
    return {
        node.name: node
        for node in cls.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


class _Program:
    """Whole-program lock analysis shared by TL010-TL013."""

    def __init__(self, modules: Sequence[ParsedModule]) -> None:
        self.modules = list(modules)
        self.classes: List[_ClassAnalysis] = []
        #: Simple name -> analysis; names defined more than once are
        #: ambiguous and excluded from cross-class resolution.
        self.by_name: Dict[str, Optional[_ClassAnalysis]] = {}
        self._collect()
        self._resolve_locks()
        self._scan_methods()
        self._infer_held_sets()
        self._infer_guards()
        # Filled by _build_graph:
        self.acquires: Dict[Tuple[str, str], Set[str]] = {}
        self.graph = self._build_graph()

    # -- collection ------------------------------------------------------

    def _collect(self) -> None:
        for module in self.modules:
            aliases = import_aliases(module.tree)
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                analysis = _ClassAnalysis(
                    module=module,
                    node=node,
                    name=node.name,
                    bases=_base_names(node),
                    methods=_own_methods(node),
                )
                analysis._aliases = aliases  # type: ignore[attr-defined]
                self.classes.append(analysis)
                if node.name in self.by_name:
                    self.by_name[node.name] = None  # ambiguous
                else:
                    self.by_name[node.name] = analysis
        # Cheap pre-pass: where does each class create locks?
        for cls in self.classes:
            for method_name, fn in cls.methods.items():
                for stmt in ast.walk(fn):
                    if not isinstance(stmt, ast.Assign):
                        continue
                    if _lock_factory_name(stmt.value) is None:
                        continue
                    for target in stmt.targets:
                        attr = self_attr(target)
                        if attr is None:
                            continue
                        if method_name == "__init__":
                            cls.own_locks.setdefault(attr, stmt)
                        else:
                            cls.stray_locks.append(
                                (stmt, attr, "created outside __init__")
                            )

    def _lookup(self, name: str) -> Optional[_ClassAnalysis]:
        return self.by_name.get(name)

    def _resolve_locks(self) -> None:
        """Merge inherited lock attributes and attribute types."""

        def resolve(cls: _ClassAnalysis, seen: Set[str]) -> None:
            if cls.lock_owner or cls.name in seen:
                return
            seen.add(cls.name)
            for base_name in cls.bases:
                base = self._lookup(base_name)
                if base is None:
                    continue
                resolve(base, seen)
                for attr, owner in base.lock_owner.items():
                    cls.lock_owner.setdefault(attr, owner)
                for attr, type_name in base.attr_types.items():
                    cls.attr_types.setdefault(attr, type_name)
            for attr in cls.own_locks:
                cls.lock_owner[attr] = cls.name
            init = cls.methods.get("__init__")
            if init is not None:
                cls.own_attr_types = self._init_attr_types(init)
            for attr, type_name in cls.own_attr_types.items():
                cls.attr_types[attr] = type_name
            cls.lock_attrs = set(cls.lock_owner)

        for cls in self.classes:
            resolve(cls, set())

    def _init_attr_types(self, init: ast.AST) -> Dict[str, str]:
        """``self._x = ClassName(...)`` / annotated params -> attr type."""
        param_types: Dict[str, str] = {}
        args = init.args  # type: ignore[attr-defined]
        for arg in list(args.args) + list(args.kwonlyargs):
            type_name = _annotation_class(arg.annotation)
            if type_name is not None and self._lookup(type_name) is not None:
                param_types[arg.arg] = type_name
        types: Dict[str, str] = {}
        for stmt in ast.walk(init):
            if isinstance(stmt, ast.AnnAssign):
                attr = self_attr(stmt.target)
                type_name = _annotation_class(stmt.annotation)
                if (
                    attr is not None
                    and type_name is not None
                    and self._lookup(type_name) is not None
                ):
                    types[attr] = type_name
                continue
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            attr = self_attr(stmt.targets[0])
            if attr is None:
                continue
            value = stmt.value
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and self._lookup(value.func.id) is not None
            ):
                types[attr] = value.func.id
            elif isinstance(value, ast.Name) and value.id in param_types:
                types[attr] = param_types[value.id]
        return types

    # -- per-method scans ------------------------------------------------

    def _scan_methods(self) -> None:
        for cls in self.classes:
            if not cls.lock_attrs and not cls.stray_locks:
                continue
            aliases = cls._aliases  # type: ignore[attr-defined]
            typed = set(cls.attr_types)
            for name, fn in cls.methods.items():
                cls.scans[name] = _MethodScan(
                    cls.lock_attrs, aliases, typed
                ).scan(fn)

    # -- held-set inference ----------------------------------------------

    def _call_sites(
        self, cls: _ClassAnalysis
    ) -> Dict[str, List[Tuple[str, FrozenSet[str]]]]:
        sites: Dict[str, List[Tuple[str, FrozenSet[str]]]] = {}
        for caller, scan in cls.scans.items():
            for call in scan.calls:
                if call.receiver is None and call.method in cls.methods:
                    sites.setdefault(call.method, []).append((caller, call.locks))
        return sites

    def _infer_held_sets(self) -> None:
        for cls in self.classes:
            if not cls.scans:
                continue
            all_locks = frozenset(cls.lock_attrs)
            sites = self._call_sites(cls)
            held: Dict[str, FrozenSet[str]] = {}
            for name in cls.methods:
                if name.endswith(HELD_SUFFIX):
                    held[name] = all_locks
                elif cls.is_entry(name) or name not in sites:
                    held[name] = _EMPTY
                else:
                    held[name] = all_locks  # optimistic; fixed point shrinks
            changed = True
            while changed:
                changed = False
                for name in cls.methods:
                    if (
                        cls.is_entry(name)
                        or name.endswith(HELD_SUFFIX)
                        or name not in sites
                    ):
                        continue
                    merged: Optional[FrozenSet[str]] = None
                    for caller, locks in sites[name]:
                        effective = locks | held.get(caller, _EMPTY)
                        merged = (
                            effective
                            if merged is None
                            else merged & effective
                        )
                    merged = merged if merged is not None else _EMPTY
                    if merged != held[name]:
                        held[name] = merged
                        changed = True
            cls.held = held
            # Helpers reachable only from construction run pre-sharing.
            construction: Set[str] = set()
            changed = True
            while changed:
                changed = False
                for name in cls.methods:
                    if name in construction or cls.is_entry(name):
                        continue
                    method_sites = sites.get(name)
                    if not method_sites:
                        continue
                    if all(
                        caller == "__init__" or caller in construction
                        for caller, _locks in method_sites
                    ):
                        construction.add(name)
                        changed = True
            cls.construction_only = construction

    # -- guarded-attribute inference -------------------------------------

    def _infer_guards(self) -> None:
        def own_guards(cls: _ClassAnalysis) -> Dict[str, Set[str]]:
            guards: Dict[str, Set[str]] = {}
            for name, scan in cls.scans.items():
                base_held = cls.held.get(name, _EMPTY)
                for access in scan.accesses:
                    if not access.write or access.attr in cls.lock_attrs:
                        continue
                    effective = (access.locks | base_held) & cls.lock_attrs
                    for lock in effective:
                        guards.setdefault(access.attr, set()).add(lock)
            return guards

        computed: Dict[str, Dict[str, Set[str]]] = {}

        def resolve(cls: _ClassAnalysis, seen: Set[str]) -> Dict[str, Set[str]]:
            if cls.name in computed:
                return computed[cls.name]
            if cls.name in seen:
                return {}
            seen.add(cls.name)
            merged: Dict[str, Set[str]] = {}
            for base_name in cls.bases:
                base = self._lookup(base_name)
                if base is None:
                    continue
                for attr, locks in resolve(base, seen).items():
                    merged.setdefault(attr, set()).update(
                        lock for lock in locks if lock in cls.lock_attrs
                    )
            for attr, locks in own_guards(cls).items():
                merged.setdefault(attr, set()).update(locks)
            merged = {attr: locks for attr, locks in merged.items() if locks}
            computed[cls.name] = merged
            return merged

        for cls in self.classes:
            cls.guarded = resolve(cls, set())

    # -- lock-order graph ------------------------------------------------

    def node_id(self, cls: _ClassAnalysis, lock_attr: str) -> str:
        owner = cls.lock_owner.get(lock_attr, cls.name)
        return f"{owner}.{lock_attr}"

    def _resolve_method(
        self, cls: _ClassAnalysis, method: str
    ) -> Optional[Tuple[str, str]]:
        """(class name, method) after walking the in-program MRO."""
        seen: Set[str] = set()
        queue = [cls.name]
        while queue:
            name = queue.pop(0)
            if name in seen:
                continue
            seen.add(name)
            candidate = self._lookup(name)
            if candidate is None:
                continue
            if method in candidate.methods:
                return (candidate.name, method)
            queue.extend(candidate.bases)
        return None

    def _build_graph(self) -> "LockGraph":
        # Transitive lock acquisitions per (class, method), global fixed
        # point across intra-class calls and typed cross-class calls.
        acquires: Dict[Tuple[str, str], Set[str]] = {}
        scanned = [
            (cls, name, scan)
            for cls in self.classes
            for name, scan in cls.scans.items()
        ]
        for cls, name, scan in scanned:
            direct = {self.node_id(cls, acq.attr) for acq in scan.acquires}
            acquires[(cls.name, name)] = direct
        changed = True
        while changed:
            changed = False
            for cls, name, scan in scanned:
                current = acquires[(cls.name, name)]
                before = len(current)
                for call in scan.calls:
                    target: Optional[Tuple[str, str]] = None
                    if call.receiver is None:
                        target = self._resolve_method(cls, call.method)
                    else:
                        type_name = cls.attr_types.get(call.receiver)
                        if type_name is not None:
                            owner = self._lookup(type_name)
                            if owner is not None:
                                target = self._resolve_method(owner, call.method)
                    if target is not None and target in acquires:
                        current |= acquires[target]
                if len(current) != before:
                    changed = True
        self.acquires = acquires

        graph = LockGraph()
        for cls in self.classes:
            for attr, stmt in cls.own_locks.items():
                graph.add_node(
                    f"{cls.name}.{attr}",
                    cls.module.path,
                    getattr(stmt, "lineno", 1),
                )
            for attr, locks in sorted(cls.guarded.items()):
                for lock in locks:
                    graph.guards.setdefault(
                        self.node_id(cls, lock), set()
                    ).add(f"{cls.name}.{attr}")
        for cls, name, scan in scanned:
            base_held = cls.held.get(name, _EMPTY)
            for acq in scan.acquires:
                effective = acq.locks | base_held
                target_id = self.node_id(cls, acq.attr)
                for lock in effective:
                    source_id = self.node_id(cls, lock)
                    if source_id != target_id:
                        graph.add_edge(
                            source_id,
                            target_id,
                            cls.module.path,
                            getattr(acq.node, "lineno", 1),
                        )
            for call in scan.calls:
                effective = call.locks | base_held
                if not effective:
                    continue
                if call.receiver is None:
                    target = self._resolve_method(cls, call.method)
                else:
                    type_name = cls.attr_types.get(call.receiver)
                    target = None
                    if type_name is not None:
                        owner = self._lookup(type_name)
                        if owner is not None:
                            target = self._resolve_method(owner, call.method)
                if target is None:
                    continue
                for target_id in sorted(acquires.get(target, ())):
                    for lock in effective:
                        source_id = self.node_id(cls, lock)
                        if source_id != target_id:
                            graph.add_edge(
                                source_id,
                                target_id,
                                cls.module.path,
                                getattr(call.node, "lineno", 1),
                            )
        return graph


class LockGraph:
    """The inferred lock-acquisition-order graph."""

    def __init__(self) -> None:
        self.nodes: Dict[str, Tuple[str, int]] = {}
        self.edges: Dict[Tuple[str, str], Tuple[str, int]] = {}
        self.guards: Dict[str, Set[str]] = {}

    def add_node(self, node_id: str, path: str, line: int) -> None:
        self.nodes.setdefault(node_id, (path, line))

    def add_edge(self, source: str, target: str, path: str, line: int) -> None:
        self.nodes.setdefault(source, ("", 0))
        self.nodes.setdefault(target, ("", 0))
        self.edges.setdefault((source, target), (path, line))

    def successors(self, node_id: str) -> List[str]:
        return sorted(t for (s, t) in self.edges if s == node_id)

    def cycles(self) -> List[List[str]]:
        """Strongly connected components with a cycle, sorted."""
        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        counter = [0]
        components: List[List[str]] = []

        def strongconnect(node: str) -> None:
            index[node] = lowlink[node] = counter[0]
            counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            for succ in self.successors(node):
                if succ not in index:
                    strongconnect(succ)
                    lowlink[node] = min(lowlink[node], lowlink[succ])
                elif succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or (node, node) in self.edges:
                    components.append(sorted(component))

        for node in sorted(self.nodes):
            if node not in index:
                strongconnect(node)
        return sorted(components)

    def topological_order(self) -> Optional[List[str]]:
        """Kahn's ordering, or ``None`` when the graph has a cycle."""
        indegree = {node: 0 for node in self.nodes}
        for _source, target in self.edges:
            indegree[target] += 1
        ready = sorted(n for n, d in indegree.items() if d == 0)
        order: List[str] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for succ in self.successors(node):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
            ready.sort()
        if len(order) != len(self.nodes):
            return None
        return order


_CACHE: Dict[Tuple[int, ...], _Program] = {}
_CACHE_LIMIT = 8


def analyze_program(modules: Sequence[ParsedModule]) -> _Program:
    """Run (or reuse) the lock analysis for this exact module set."""
    key = tuple(id(m) for m in modules)
    program = _CACHE.get(key)
    if program is None:
        program = _Program(modules)
        if len(_CACHE) >= _CACHE_LIMIT:
            _CACHE.pop(next(iter(_CACHE)))
        _CACHE[key] = program
    return program


def build_lock_graph(modules: Sequence[ParsedModule]) -> LockGraph:
    """Public entry point for the ``repro-lockcheck`` CLI."""
    return analyze_program(modules).graph


def _fmt_locks(locks: Iterable[str]) -> str:
    return ", ".join(sorted(f"self.{lock}" for lock in locks))


class GuardedAttributeDiscipline(ProgramRule):
    rule_id = "TL010"
    title = "Guarded attributes must be accessed under their lock"
    severity = Severity.ERROR
    paper_section = "§3.2 (the runtime serializes view access against playback)"
    rationale = (
        "Any attribute written inside `with self._lock` is inferred to be "
        "guarded by that lock; every other read or write of it must hold "
        "the same lock, or concurrent playback/RPC threads can observe "
        "torn state and lose updates. Private helpers inherit the "
        "intersection of the locks held at their intra-class call sites; "
        "a `*_locked` suffix asserts the caller holds every class lock."
    )

    def check_program(
        self, modules: Sequence[ParsedModule]
    ) -> Iterable[Diagnostic]:
        program = analyze_program(modules)
        for cls in program.classes:
            if not cls.lock_attrs:
                continue
            for name, scan in cls.scans.items():
                if name in EXEMPT_METHODS or name in cls.construction_only:
                    continue
                base_held = cls.held.get(name, _EMPTY)
                reported: Set[Tuple[int, str]] = set()
                for access in scan.accesses:
                    guards = cls.guarded.get(access.attr)
                    if not guards or access.attr in cls.lock_attrs:
                        continue
                    if (access.locks | base_held) & guards:
                        continue
                    line = getattr(access.node, "lineno", 1)
                    if (line, access.attr) in reported:
                        continue
                    reported.add((line, access.attr))
                    verb = "written" if access.write else "read"
                    yield self.diag(
                        cls.module,
                        access.node,
                        f"'{cls.name}.{access.attr}' is guarded by "
                        f"{_fmt_locks(guards)} but {verb} here without "
                        f"holding the lock",
                    )


class LockOrderAcyclicity(ProgramRule):
    rule_id = "TL011"
    title = "Lock acquisition order must be acyclic"
    severity = Severity.ERROR
    paper_section = "§4 (multiple clients interleave on the shared log)"
    rationale = (
        "Acquiring lock B while holding lock A orders A before B. If the "
        "whole-program acquisition graph has a cycle, two threads can "
        "each hold one lock of the cycle and wait on the other forever "
        "(the classic ABBA deadlock). Edges follow intra-class helper "
        "calls and statically-typed cross-class calls."
    )

    def check_program(
        self, modules: Sequence[ParsedModule]
    ) -> Iterable[Diagnostic]:
        program = analyze_program(modules)
        graph = program.graph
        by_path = {m.path: m for m in modules}
        for component in graph.cycles():
            members = set(component)
            witness_edges = sorted(
                (edge, where)
                for edge, where in graph.edges.items()
                if edge[0] in members and edge[1] in members
            )
            path, line = witness_edges[0][1]
            module = by_path.get(path)
            if module is None:
                continue
            chain = " -> ".join(component + [component[0]])
            detail = "; ".join(
                f"{s} -> {t} at {p}:{ln}"
                for (s, t), (p, ln) in witness_edges
            )
            anchor = ast.Pass()
            anchor.lineno = line  # type: ignore[attr-defined]
            anchor.col_offset = 0  # type: ignore[attr-defined]
            yield self.diag(
                module,
                anchor,
                f"potential deadlock: lock-order cycle {chain} ({detail})",
            )


class NoBlockingUnderLock(ProgramRule):
    rule_id = "TL012"
    title = "No blocking calls while holding a lock"
    severity = Severity.ERROR
    paper_section = "§2.1/§4.1 (RPC latency must not serialize unrelated work)"
    rationale = (
        "A transport RPC, `time.sleep`, an untimed `wait()`, or a "
        "blocking `acquire()` inside a critical section stalls every "
        "thread contending for that lock for the full (possibly "
        "fault-injected) network delay. Move the blocking call outside "
        "the `with` block, or suppress with a justification when the "
        "blocking is the point (e.g. a handoff protocol)."
    )

    def check_program(
        self, modules: Sequence[ParsedModule]
    ) -> Iterable[Diagnostic]:
        program = analyze_program(modules)
        for cls in program.classes:
            if not cls.lock_attrs:
                continue
            for name, scan in cls.scans.items():
                if name in cls.construction_only or name == "__init__":
                    continue
                base_held = cls.held.get(name, _EMPTY)
                for blocked in scan.blocking:
                    effective = blocked.locks | base_held
                    if not effective:
                        continue
                    yield self.diag(
                        cls.module,
                        blocked.node,
                        f"{blocked.what} while holding "
                        f"{_fmt_locks(effective)}; move the blocking "
                        f"call outside the critical section",
                    )


class LockLifecycleDiscipline(ProgramRule):
    rule_id = "TL013"
    title = "Locks are created once, in __init__"
    severity = Severity.ERROR
    paper_section = "§3.1 (per-object runtime state is fixed at construction)"
    rationale = (
        "A lock created outside __init__ or reassigned after "
        "construction races its own users: a thread synchronizing on "
        "the old object and a thread on the new one are both 'holding "
        "the lock' at once, silently voiding every guarantee the lock "
        "was meant to provide."
    )

    def check_program(
        self, modules: Sequence[ParsedModule]
    ) -> Iterable[Diagnostic]:
        program = analyze_program(modules)
        for cls in program.classes:
            for node, attr, why in cls.stray_locks:
                if attr in cls.lock_attrs:
                    # The attr also holds an __init__-created lock: this
                    # stray factory call replaces it.
                    why = "reassigned after construction"
                yield self.diag(
                    cls.module,
                    node,
                    f"lock attribute 'self.{attr}' {why}; create locks "
                    f"exactly once in __init__",
                )
            for name, scan in cls.scans.items():
                if name == "__init__":
                    continue
                reported: Set[int] = set()
                stray_lines = {
                    getattr(node, "lineno", 0)
                    for node, _attr, _why in cls.stray_locks
                }
                for access in scan.accesses:
                    if (
                        access.write
                        and access.kind == "assign"
                        and access.attr in cls.lock_attrs
                    ):
                        line = getattr(access.node, "lineno", 1)
                        if line in reported or line in stray_lines:
                            continue
                        reported.add(line)
                        yield self.diag(
                            cls.module,
                            access.node,
                            f"lock attribute 'self.{access.attr}' reassigned "
                            f"after construction; create locks exactly once "
                            f"in __init__",
                        )
