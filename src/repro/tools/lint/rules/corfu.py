"""Rules TL004/TL005: CORFU's storage-server protocol (paper section 2.2).

A CORFU storage node exposes a write-once address space fenced by
epochs: reconfiguration seals the old epoch, and "any client request
accompanied by the sealed epoch is rejected". Both properties are load
bearing — write-once is what lets chain replication arbitrate append
races, and the seal is what makes reconfiguration safe — and both are
one careless mutation away from being silently lost.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.tools.lint.engine import Diagnostic, ParsedModule, Rule, Severity
from repro.tools.lint.rules.common import (
    class_methods,
    iter_self_writes,
    ordered_nodes,
    self_attr,
)

#: The attribute holding a unit's sealed epoch.
_EPOCH_ATTR = "_epoch"

#: The attribute holding a unit's write-once page store.
_PAGES_ATTR = "_pages"

#: Methods allowed to install pages: the guarded write path. Recovery
#: replay (rebuilding from frames the guarded path produced) must carry
#: an explicit suppression — it is the one legitimate exception.
_GUARDED_WRITERS = frozenset({"write"})


def _is_epoch_keeper(cls: ast.ClassDef) -> bool:
    """True when *cls* maintains a sealed epoch (a storage-side server)."""
    for _node, attr, _kind in iter_self_writes(cls):
        if attr == _EPOCH_ATTR:
            return True
    return False


def _epoch_param(fn: ast.FunctionDef) -> Optional[str]:
    for arg in list(fn.args.posonlyargs) + list(fn.args.args) + list(
        fn.args.kwonlyargs
    ):
        if arg.arg == "epoch":
            return arg.arg
    return None


class EpochCheckBeforeMutation(Rule):
    """TL004: storage handlers check the sealed epoch before mutating."""

    rule_id = "TL004"
    title = "seal/epoch check before storage mutation"
    severity = Severity.ERROR
    paper_section = "§2.2, §5"
    rationale = (
        "Once a reconfiguration seals an epoch, no request from that "
        "epoch may alter a storage unit — otherwise a delayed write "
        "from the old configuration lands after the new projection was "
        "installed and the log forks. Every handler that accepts an "
        "epoch argument and mutates unit state must validate the epoch "
        "(call its _check_epoch helper or compare against self._epoch) "
        "before the first mutation."
    )

    def check(self, module: ParsedModule) -> Iterable[Diagnostic]:
        for cls in (
            n for n in ast.walk(module.tree) if isinstance(n, ast.ClassDef)
        ):
            if not _is_epoch_keeper(cls):
                continue
            for name, fn in class_methods(cls).items():
                if name == "__init__" or _epoch_param(fn) is None:
                    continue
                finding = self._first_unguarded_mutation(fn)
                if finding is not None:
                    yield self.diag(
                        module,
                        finding,
                        f"{cls.name}.{name} takes an epoch but mutates "
                        f"unit state before validating it; check the "
                        f"sealed epoch first (paper: sealed epochs must "
                        f"reject every request)",
                    )

    def _first_unguarded_mutation(
        self, fn: ast.FunctionDef
    ) -> Optional[ast.AST]:
        """The first self-write preceding any epoch validation, if any."""
        guarded = False
        writes = {
            id(node): node for node, _attr, _kind in iter_self_writes(fn)
        }
        for node in ordered_nodes(fn):
            if self._is_epoch_guard(node):
                guarded = True
            if guarded:
                return None
            if id(node) in writes:
                return node
        return None

    @staticmethod
    def _is_epoch_guard(node: ast.AST) -> bool:
        # A call to self._check_epoch(epoch) / self._check(epoch) ...
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if self_attr(node.func) is not None and "check" in node.func.attr:
                if any(
                    isinstance(a, ast.Name) and a.id == "epoch"
                    for a in node.args
                ):
                    return True
        # ... or any comparison that reads self._epoch.
        if isinstance(node, ast.Compare):
            for part in [node.left] + list(node.comparators):
                if self_attr(part) == _EPOCH_ATTR:
                    return True
        return False


class WriteOncePages(Rule):
    """TL005: pages are installed only by the guarded write path."""

    rule_id = "TL005"
    title = "write-once page installation"
    severity = Severity.ERROR
    paper_section = "§2.2"
    rationale = (
        "The write-once address space is what lets chain replication "
        "arbitrate append races without coordination: the first write "
        "wins and every later one must observe WrittenError. Installing "
        "a page anywhere but the guarded write() path (which checks "
        "trim state and prior occupancy under the unit lock) can "
        "silently overwrite committed data. Deletions (trims) are "
        "legal; stores are not."
    )

    def check(self, module: ParsedModule) -> Iterable[Diagnostic]:
        for cls in (
            n for n in ast.walk(module.tree) if isinstance(n, ast.ClassDef)
        ):
            for name, fn in class_methods(cls).items():
                if name in _GUARDED_WRITERS:
                    continue
                yield from self._page_stores(module, cls, name, fn)

    def _page_stores(
        self,
        module: ParsedModule,
        cls: ast.ClassDef,
        name: str,
        fn: ast.FunctionDef,
    ) -> Iterable[Diagnostic]:
        for node in ast.walk(fn):
            if not isinstance(node, (ast.Assign, ast.AugAssign)):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and self_attr(target.value) == _PAGES_ATTR
                ):
                    yield self.diag(
                        module,
                        node,
                        f"{cls.name}.{name} installs a page directly "
                        f"(self.{_PAGES_ATTR}[...] = ...); only the "
                        f"guarded write() path may store pages "
                        f"(write-once)",
                    )
                elif name != "__init__" and self_attr(target) == _PAGES_ATTR:
                    yield self.diag(
                        module,
                        node,
                        f"{cls.name}.{name} rebinds the page store "
                        f"(self.{_PAGES_ATTR} = ...); the write-once "
                        f"space may only be populated via write()",
                    )
