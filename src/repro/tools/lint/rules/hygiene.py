"""Rules TL006–TL008: failure-handling and API hygiene.

These encode the paper's operational assumptions rather than a single
protocol step: clients *must see* protocol errors to react to them
(section 5's reconfiguration loop only works if SealedError reaches the
retry logic), everything that crosses the log must be explicitly
encoded, and public APIs must not leak shared mutable state.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.tools.lint.engine import Diagnostic, ParsedModule, Rule, Severity

#: Serialization modules whose formats are implicit / code-executing.
_BANNED_SERIALIZERS = frozenset({"pickle", "cPickle", "marshal", "shelve", "dill"})

#: Mutable-literal constructors that must not appear as defaults.
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})


class NoSwallowedProtocolErrors(Rule):
    """TL006: retry loops must not blind-catch protocol errors."""

    rule_id = "TL006"
    title = "no swallowed protocol errors in retry loops"
    severity = Severity.ERROR
    paper_section = "§2.2, §5"
    rationale = (
        "The client protocol reacts to typed errors: WrittenError means "
        "'retry with a fresh offset', SealedError means 'fetch the new "
        "projection'. A bare except (anywhere) or a broad 'except "
        "Exception' inside a retry loop that never re-raises swallows "
        "those signals, so a sealed client spins forever against a dead "
        "configuration instead of reconfiguring. Catch the specific "
        "error types the protocol defines."
    )

    def check(self, module: ParsedModule) -> Iterable[Diagnostic]:
        loops = [
            n for n in ast.walk(module.tree) if isinstance(n, (ast.While, ast.For))
        ]
        for handler in (
            n for n in ast.walk(module.tree) if isinstance(n, ast.ExceptHandler)
        ):
            reraises = any(isinstance(n, ast.Raise) for n in ast.walk(handler))
            if handler.type is None:
                if not reraises:
                    yield self.diag(
                        module,
                        handler,
                        "bare 'except:' swallows every protocol error "
                        "(TangoError, SealedError, ...); catch specific "
                        "types",
                    )
                continue
            if reraises:
                continue
            if self._is_blind(handler.type) and self._inside(handler, loops):
                yield self.diag(
                    module,
                    handler,
                    "'except Exception' inside a retry loop swallows "
                    "protocol errors (SealedError/TangoError) without "
                    "re-raising; catch the specific errors the protocol "
                    "defines",
                )

    @staticmethod
    def _is_blind(node: ast.expr) -> bool:
        names = []
        if isinstance(node, ast.Tuple):
            names = [e.id for e in node.elts if isinstance(e, ast.Name)]
        elif isinstance(node, ast.Name):
            names = [node.id]
        return any(n in ("Exception", "BaseException") for n in names)

    @staticmethod
    def _inside(handler: ast.ExceptHandler, loops: list) -> bool:
        return any(
            loop.lineno <= handler.lineno <= max(
                (n.lineno for n in ast.walk(loop) if hasattr(n, "lineno")),
                default=loop.lineno,
            )
            for loop in loops
        )


class ExplicitLogEncoding(Rule):
    """TL007: payloads cross the log via repro.util.encoding, not pickle."""

    rule_id = "TL007"
    title = "explicit encoding for log payloads"
    severity = Severity.ERROR
    paper_section = "§3.1, §4.2"
    rationale = (
        "Log entries are flat byte strings shared by every client "
        "version; their format is a protocol, not an implementation "
        "detail. pickle/marshal round-trips tie the log format to the "
        "Python heap (and execute code on load — a log entry is remote "
        "input), and repr/eval round-trips are worse. All record "
        "serialization must go through repro.util.encoding (or an "
        "explicit format like JSON for opaque application payloads)."
    )

    def check(self, module: ParsedModule) -> Iterable[Diagnostic]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _BANNED_SERIALIZERS:
                        yield self.diag(
                            module,
                            node,
                            f"import of '{alias.name}': log payloads "
                            f"must use repro.util.encoding, not "
                            f"implicit serializers",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in _BANNED_SERIALIZERS:
                    yield self.diag(
                        module,
                        node,
                        f"import from '{node.module}': log payloads "
                        f"must use repro.util.encoding, not implicit "
                        f"serializers",
                    )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in ("eval", "exec"):
                    yield self.diag(
                        module,
                        node,
                        f"'{node.func.id}()' on data is a code-executing "
                        f"decode path; log payloads need an explicit "
                        f"encoding",
                    )


class NoMutableDefaults(Rule):
    """TL008: no mutable default arguments in public APIs."""

    rule_id = "TL008"
    title = "no mutable default arguments"
    severity = Severity.ERROR
    paper_section = "—"
    rationale = (
        "A mutable default is shared across every call and every "
        "client on the process, which in a multi-runtime deployment "
        "aliases state between supposedly independent clients — the "
        "exact cross-client channel the shared log is supposed to be. "
        "Use None and construct inside the function."
    )

    def check(self, module: ParsedModule) -> Iterable[Diagnostic]:
        for fn in (
            n
            for n in ast.walk(module.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ):
            defaults = list(fn.args.defaults) + [
                d for d in fn.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.diag(
                        module,
                        default,
                        f"mutable default argument in {fn.name}(); "
                        f"default to None and construct per call",
                    )

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in _MUTABLE_CALLS
        return False
