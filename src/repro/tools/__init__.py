"""Operational tooling: log inspection, integrity checking, linting."""

from repro.tools.discovery import iter_python_files, module_name_for
from repro.tools.inspect import (
    LogDoctorReport,
    check_log,
    compact_all,
    dump_log,
    format_dump,
    stream_summary,
)
from repro.tools.lint import Diagnostic, lint_paths

__all__ = [
    "dump_log",
    "format_dump",
    "stream_summary",
    "check_log",
    "compact_all",
    "LogDoctorReport",
    "iter_python_files",
    "module_name_for",
    "lint_paths",
    "Diagnostic",
]
