"""Operational tooling: log inspection and integrity checking."""

from repro.tools.inspect import (
    LogDoctorReport,
    check_log,
    compact_all,
    dump_log,
    format_dump,
    stream_summary,
)

__all__ = [
    "dump_log",
    "format_dump",
    "stream_summary",
    "check_log",
    "compact_all",
    "LogDoctorReport",
]
