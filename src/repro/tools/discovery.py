"""Source-tree discovery shared by the operational tools.

Both the linter (:mod:`repro.tools.lint`) and ad-hoc inspection scripts
need to walk a package tree and enumerate Python modules; this module is
the single implementation so the tools never disagree about what counts
as a source file.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator, List, Sequence

#: Directory names that never contain lintable source.
SKIP_DIRS = frozenset({"__pycache__", ".git", ".hg", ".tox", ".venv", "venv"})


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Yield every ``.py`` file under *paths*, in sorted, stable order.

    Each element of *paths* may be a file (yielded as-is when it ends in
    ``.py``) or a directory (walked recursively, skipping
    :data:`SKIP_DIRS`). Paths are yielded exactly once even when the
    inputs overlap.
    """
    seen = set()
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py") and path not in seen:
                seen.add(path)
                yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames if d not in SKIP_DIRS)
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                full = os.path.join(dirpath, filename)
                if full not in seen:
                    seen.add(full)
                    yield full


def module_name_for(path: str) -> str:
    """Best-effort dotted module name for *path* (``a/b/c.py`` -> ``a.b.c``).

    The name is derived purely from the path — enough for diagnostics
    and reports; it performs no imports.
    """
    norm = os.path.normpath(path)
    parts: List[str] = norm.split(os.sep)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    # Strip leading non-package path components (e.g. "src").
    for anchor in ("repro",):
        if anchor in parts:
            parts = parts[parts.index(anchor):]
            break
    return ".".join(p for p in parts if p not in (".", ""))


def path_parts(path: str) -> Iterable[str]:
    """The normalized components of *path* (for scope checks)."""
    return tuple(os.path.normpath(path).split(os.sep))
