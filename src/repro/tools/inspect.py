"""Log inspection: dump, summarize, and fsck a shared log.

Operators of a log-structured system live and die by their inspection
tools. This module provides three, all read-only:

- :func:`dump_log` — decode every entry (stream membership, record
  kinds, transaction ids) into plain dicts;
- :func:`stream_summary` — per-stream statistics;
- :func:`check_log` — an fsck: verifies backpointer integrity (every
  header's pointers land on earlier entries of the same stream),
  transaction completeness (no speculative updates without a commit, no
  commit awaiting a decision that never arrived), and hole accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.corfu.cluster import CorfuCluster
from repro.corfu.entry import NO_BACKPOINTER, LogEntry
from repro.errors import TrimmedError, UnwrittenError
from repro.tango.records import (
    CheckpointRecord,
    CommitRecord,
    DecisionRecord,
    UpdateRecord,
    decode_records,
)


def _read_entries(cluster: CorfuCluster) -> List[Tuple[int, Optional[LogEntry], str]]:
    """(offset, entry-or-None, state) for every offset below the tail.

    State is one of ``ok``, ``junk``, ``hole``, ``trimmed``.
    """
    client = cluster.client()
    tail = client.check(fast=False)
    out: List[Tuple[int, Optional[LogEntry], str]] = []
    for offset in range(tail):
        try:
            entry = client.read(offset)
        except UnwrittenError:
            out.append((offset, None, "hole"))
            continue
        except TrimmedError:
            out.append((offset, None, "trimmed"))
            continue
        out.append((offset, entry, "junk" if entry.is_junk else "ok"))
    return out


def dump_log(cluster: CorfuCluster, decode_payloads: bool = True) -> List[dict]:
    """Decode the whole log into one dict per offset."""
    rows = []
    for offset, entry, state in _read_entries(cluster):
        row: dict = {"offset": offset, "state": state}
        if entry is not None and not entry.is_junk:
            row["streams"] = list(entry.stream_ids())
            row["payload_bytes"] = len(entry.payload)
            if decode_payloads:
                try:
                    records = decode_records(entry.payload)
                # fsck must survive arbitrarily corrupt payloads; the
                # failure is reported in the row, not swallowed.
                except Exception:  # tangolint: disable=TL006
                    row["records"] = ["<undecodable>"]
                else:
                    row["records"] = [_describe(r) for r in records]
        rows.append(row)
    return rows


def _describe(record) -> str:
    if isinstance(record, UpdateRecord):
        kind = "speculative-update" if record.is_speculative else "update"
        key = f" key={record.key!r}" if record.key is not None else ""
        return f"{kind} oid={record.oid}{key} ({len(record.payload)}B)"
    if isinstance(record, CommitRecord):
        flags = []
        if record.decision_expected:
            flags.append("decision-expected")
        if record.forced_abort:
            flags.append("forced-abort")
        suffix = f" [{','.join(flags)}]" if flags else ""
        return (
            f"commit tx={record.tx_id} reads={list(record.read_oids())} "
            f"writes={list(record.write_oids)}{suffix}"
        )
    if isinstance(record, DecisionRecord):
        verdict = "commit" if record.committed else "abort"
        return f"decision tx={record.tx_id} -> {verdict}"
    if isinstance(record, CheckpointRecord):
        return f"checkpoint oid={record.oid} covers={record.covers_offset}"
    return type(record).__name__


def format_dump(rows: List[dict]) -> str:
    """Human-readable rendering of :func:`dump_log` output."""
    lines = []
    for row in rows:
        if row["state"] != "ok":
            lines.append(f"{row['offset']:>8}  <{row['state']}>")
            continue
        streams = ",".join(str(s) for s in row.get("streams", []))
        lines.append(f"{row['offset']:>8}  streams=[{streams}]")
        for description in row.get("records", []):
            lines.append(f"          {description}")
    return "\n".join(lines)


def stream_summary(cluster: CorfuCluster) -> Dict[int, dict]:
    """Per-stream statistics over the whole log."""
    summary: Dict[int, dict] = {}
    for offset, entry, state in _read_entries(cluster):
        if entry is None or entry.is_junk:
            continue
        for sid in entry.stream_ids():
            stats = summary.setdefault(
                sid,
                {"entries": 0, "first_offset": offset, "last_offset": offset,
                 "payload_bytes": 0},
            )
            stats["entries"] += 1
            stats["last_offset"] = offset
            stats["payload_bytes"] += len(entry.payload)
    return summary


@dataclass
class LogDoctorReport:
    """Result of :func:`check_log`."""

    tail: int = 0
    entries: int = 0
    holes: List[int] = field(default_factory=list)
    junk: List[int] = field(default_factory=list)
    trimmed: int = 0
    #: (offset, stream, pointer) triples whose pointer is wrong.
    bad_backpointers: List[Tuple[int, int, int]] = field(default_factory=list)
    #: tx ids with speculative updates but no commit record.
    orphaned_txes: List[int] = field(default_factory=list)
    #: tx ids whose commit expects a decision that never arrived.
    undecided_txes: List[int] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        """True when nothing needs operator attention.

        Holes are reported but do not make a log unhealthy by
        themselves (a client may still be writing); dangling
        transaction state and broken backpointers do.
        """
        return not (
            self.bad_backpointers or self.orphaned_txes or self.undecided_txes
        )


def check_log(cluster: CorfuCluster) -> LogDoctorReport:
    """fsck for a shared log: structural and transactional integrity."""
    report = LogDoctorReport()
    client = cluster.client()
    report.tail = client.check(fast=False)

    stream_offsets: Dict[int, Set[int]] = {}
    spec_txes: Set[int] = set()
    committed_txes: Set[int] = set()
    expecting_decision: Set[int] = set()
    decided: Set[int] = set()

    entries = _read_entries(cluster)
    # First pass: stream membership (needed to validate backpointers).
    for offset, entry, state in entries:
        if state == "hole":
            report.holes.append(offset)
        elif state == "junk":
            report.junk.append(offset)
        elif state == "trimmed":
            report.trimmed += 1
        if entry is None or entry.is_junk:
            continue
        report.entries += 1
        for sid in entry.stream_ids():
            stream_offsets.setdefault(sid, set()).add(offset)

    # Second pass: validate pointers and transaction lifecycles.
    for offset, entry, _state in entries:
        if entry is None or entry.is_junk:
            continue
        for header in entry.headers:
            members = stream_offsets.get(header.stream_id, set())
            for pointer in header.backpointers:
                if pointer == NO_BACKPOINTER:
                    continue
                if pointer >= offset or (
                    pointer not in members
                    # Pointers at reserved-then-crashed offsets are
                    # legal: the sequencer issued them in good faith.
                    and pointer not in report.holes
                    and pointer not in report.junk
                    and not _is_trimmed_offset(entries, pointer)
                ):
                    report.bad_backpointers.append(
                        (offset, header.stream_id, pointer)
                    )
        try:
            records = decode_records(entry.payload)
        # fsck tolerance: an undecodable payload is already reported by
        # the structural pass; the transactional pass just skips it.
        except Exception:  # tangolint: disable=TL006
            continue
        for record in records:
            if isinstance(record, UpdateRecord) and record.is_speculative:
                spec_txes.add(record.tx_id)
            elif isinstance(record, CommitRecord):
                committed_txes.add(record.tx_id)
                if record.decision_expected:
                    expecting_decision.add(record.tx_id)
            elif isinstance(record, DecisionRecord):
                decided.add(record.tx_id)

    report.orphaned_txes = sorted(spec_txes - committed_txes)
    report.undecided_txes = sorted(expecting_decision - decided)
    return report


def _is_trimmed_offset(entries, pointer: int) -> bool:
    for offset, _entry, state in entries:
        if offset == pointer:
            return state == "trimmed"
    return pointer < 0


def compact_all(runtime, directory) -> dict:
    """Checkpoint-and-forget every named object, then GC the log.

    The operational sweep an operator runs to reclaim space: every
    object bound in the directory is checkpointed (covering its full
    played history), its forget offset registered, the directory itself
    checkpointed last, and the log trimmed to the minimum cover.

    Only objects this runtime hosts can be checkpointed; unhosted names
    are skipped and reported (they keep pinning the log until their
    hosts compact them).

    Returns ``{"trimmed_below", "checkpointed", "skipped"}``.
    """
    directory._query()  # play the directory to the tail  # noqa: SLF001
    checkpointed = []
    skipped = []
    for name in directory.names():
        oid = directory.lookup(name)
        if oid is None or not runtime.is_hosted(oid):
            skipped.append(name)
            continue
        runtime.checkpoint_and_forget(oid, directory)
        checkpointed.append(name)
    runtime.checkpoint_and_forget(directory.oid, directory)
    # gc() is safe regardless: objects that never forgot (the skipped
    # ones) pin the log and the trim point stays 0.
    trimmed = directory.gc()
    return {
        "trimmed_below": trimmed,
        "checkpointed": checkpointed,
        "skipped": skipped,
    }
