"""repro.tools.lockcheck: a runtime lock-order sanitizer.

tangolint's TL010–TL013 rules check lock discipline statically; this
package checks the same discipline *dynamically*, on whatever code the
test suite actually executes. It is the runtime half of the tangolock
toolchain (see ``docs/CONCURRENCY.md``).

The sanitizer is a lockdep-style monitor:

- every instrumented lock has a **site identity** — the class and
  source location that created it — so all ``StreamClient._lock``
  instances collapse onto one graph node, matching the static graph;
- each thread keeps a **stack of held sites**; acquiring lock B while
  holding lock A adds the order edge ``A -> B`` (first witness kept);
- an edge that closes a cycle in the order graph is a **violation**:
  two threads interleaving those paths can deadlock, even if this run
  happened not to;
- release records **hold-time stats** per site (count / total / max),
  so slow critical sections show up next to the graph.

Usage — opt in per process::

    from repro.tools import lockcheck
    mon = lockcheck.install()      # wraps threading.Lock/RLock for repro.*
    ...                            # run the workload
    mon.assert_acyclic()           # raises listing every cycle witnessed
    lockcheck.uninstall()

or set ``REPRO_LOCKCHECK=1`` and let ``tests/conftest.py`` install the
monitor for the whole pytest session. ``install()`` monkeypatches the
``threading.Lock`` / ``threading.RLock`` factories and wraps only locks
created by ``repro.*`` modules (never lockcheck itself, never the
interpreter's own machinery), so the sanitizer composes with arbitrary
test code at ~zero risk.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Dict, List, Optional, Tuple

# The real allocators, captured before install() can patch them. The
# monitor's own mutex must come from here: an instrumented internal
# lock would recurse into the monitor forever.
_real_lock = threading.Lock
_real_rlock = threading.RLock

_MONITOR: Optional["LockMonitor"] = None
_INSTALL_MU = _real_lock()


class LockSite:
    """Where a lock was created: the graph-node identity at runtime."""

    __slots__ = ("label", "filename", "lineno")

    def __init__(self, label: str, filename: str, lineno: int) -> None:
        self.label = label
        self.filename = filename
        self.lineno = lineno

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LockSite {self.label}>"


def _site_from_caller(label: Optional[str]) -> LockSite:
    """Identify the creating frame, skipping lockcheck's own frames."""
    frame = sys._getframe(1)
    while frame is not None and frame.f_globals.get("__name__", "").startswith(
        __name__
    ):
        frame = frame.f_back
    if frame is None:  # pragma: no cover - interpreter startup only
        return LockSite(label or "<unknown>", "<unknown>", 0)
    filename = os.path.basename(frame.f_code.co_filename)
    lineno = frame.f_lineno
    if label is None:
        owner = frame.f_locals.get("self")
        cls = type(owner).__name__ if owner is not None else frame.f_code.co_name
        label = f"{cls}@{filename}:{lineno}"
    return LockSite(label, filename, lineno)


class _Held:
    __slots__ = ("site", "lock_id", "since", "depth")

    def __init__(self, site: LockSite, lock_id: int, since: float) -> None:
        self.site = site
        self.lock_id = lock_id
        self.since = since
        self.depth = 1


class LockMonitor:
    """Per-process order graph, violation log, and hold-time stats."""

    def __init__(self) -> None:
        self._mu = _real_lock()
        self._held: Dict[int, List[_Held]] = {}
        # (from_label, to_label) -> first witness {thread, to_site}
        self._edges: Dict[Tuple[str, str], Dict[str, str]] = {}
        self._violations: List[Dict[str, object]] = []
        # label -> [acquisitions, total_held_s, max_held_s]
        self._stats: Dict[str, List[float]] = {}

    # -- event intake (called by InstrumentedLock) -----------------------

    def note_acquired(self, site: LockSite, lock_id: int) -> None:
        tid = threading.get_ident()
        now = time.perf_counter()
        with self._mu:
            stack = self._held.setdefault(tid, [])
            for held in stack:
                if held.lock_id == lock_id:
                    held.depth += 1  # RLock re-entry: no new edge
                    return
            for held in stack:
                self._note_edge(held.site, site)
            stack.append(_Held(site, lock_id, now))

    def note_released(self, site: LockSite, lock_id: int) -> None:
        now = time.perf_counter()
        with self._mu:
            stack = self._held.get(threading.get_ident(), [])
            for i in range(len(stack) - 1, -1, -1):
                held = stack[i]
                if held.lock_id != lock_id:
                    continue
                held.depth -= 1
                if held.depth == 0:
                    del stack[i]
                    stats = self._stats.setdefault(site.label, [0, 0.0, 0.0])
                    elapsed = now - held.since
                    stats[0] += 1
                    stats[1] += elapsed
                    stats[2] = max(stats[2], elapsed)
                return

    def _note_edge(self, source: LockSite, target: LockSite) -> None:
        key = (source.label, target.label)
        if key in self._edges:
            return
        self._edges[key] = {
            "thread": threading.current_thread().name,
            "to_site": f"{target.filename}:{target.lineno}",
        }
        path = self._find_path(target.label, source.label)
        if path is not None:
            # target ⇝ source existed already; source -> target closes it.
            self._violations.append(
                {
                    "kind": "lock-order-cycle",
                    "cycle": path + [target.label],
                    "thread": threading.current_thread().name,
                }
            )

    def _find_path(self, start: str, goal: str) -> Optional[List[str]]:
        """A path start ⇝ goal in the edge graph (DFS), or None."""
        if start == goal:
            return [start]
        seen = {start}
        trail: List[Tuple[str, List[str]]] = [(start, [start])]
        while trail:
            node, path = trail.pop()
            for src, dst in self._edges:
                if src != node or dst in seen:
                    continue
                if dst == goal:
                    return path + [dst]
                seen.add(dst)
                trail.append((dst, path + [dst]))
        return None

    # -- reporting -------------------------------------------------------

    def edges(self) -> List[Tuple[str, str]]:
        with self._mu:
            return sorted(self._edges)

    def violations(self) -> List[Dict[str, object]]:
        with self._mu:
            return list(self._violations)

    def hold_stats(self) -> Dict[str, Dict[str, float]]:
        with self._mu:
            return {
                label: {
                    "acquisitions": int(count),
                    "total_held_s": total,
                    "max_held_s": peak,
                }
                for label, (count, total, peak) in sorted(self._stats.items())
            }

    def report(self) -> Dict[str, object]:
        return {
            "edges": [list(edge) for edge in self.edges()],
            "violations": self.violations(),
            "hold_stats": self.hold_stats(),
        }

    def assert_acyclic(self) -> None:
        """Raise AssertionError describing every witnessed cycle."""
        violations = self.violations()
        if not violations:
            return
        lines = ["lockcheck: runtime lock-order violations:"]
        for v in violations:
            chain = " -> ".join(v["cycle"])  # type: ignore[arg-type]
            lines.append(f"  [{v['kind']}] {chain} (thread {v['thread']})")
        raise AssertionError("\n".join(lines))


class InstrumentedLock:
    """A Lock/RLock wrapper that reports to the active LockMonitor.

    Drop-in for the ``threading.Lock()`` / ``threading.RLock()`` call
    sites this repo uses (``acquire``/``release``/context manager).
    """

    def __init__(
        self,
        label: Optional[str] = None,
        reentrant: bool = False,
        monitor: Optional[LockMonitor] = None,
    ) -> None:
        self._inner = _real_rlock() if reentrant else _real_lock()
        self._site = _site_from_caller(label)
        self._monitor = monitor

    def _active_monitor(self) -> Optional[LockMonitor]:
        return self._monitor if self._monitor is not None else _MONITOR

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            mon = self._active_monitor()
            if mon is not None:
                mon.note_acquired(self._site, id(self))
        return acquired

    def release(self) -> None:
        mon = self._active_monitor()
        if mon is not None:
            mon.note_released(self._site, id(self))
        self._inner.release()

    def __enter__(self) -> "InstrumentedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def locked(self) -> bool:
        probe = getattr(self._inner, "locked", None)
        if probe is not None:
            return probe()
        return False  # pragma: no cover - RLock without locked()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<InstrumentedLock {self._site.label}>"


def monitor() -> Optional[LockMonitor]:
    """The installed monitor, or None when the sanitizer is off."""
    return _MONITOR


def install(existing: Optional[LockMonitor] = None) -> LockMonitor:
    """Activate the sanitizer: wrap lock creation for ``repro.*`` code.

    Idempotent; returns the active monitor. Locks created before
    install() stay uninstrumented — install early (conftest does).
    """
    global _MONITOR
    with _INSTALL_MU:
        if _MONITOR is not None:
            return _MONITOR
        _MONITOR = existing if existing is not None else LockMonitor()

        def _should_wrap() -> bool:
            name = sys._getframe(2).f_globals.get("__name__", "")
            return name.startswith("repro.") and not name.startswith(__name__)

        def _lock_factory():
            if _should_wrap():
                return InstrumentedLock()
            return _real_lock()

        def _rlock_factory():
            if _should_wrap():
                return InstrumentedLock(reentrant=True)
            return _real_rlock()

        threading.Lock = _lock_factory  # type: ignore[assignment]
        threading.RLock = _rlock_factory  # type: ignore[assignment]
        return _MONITOR


def uninstall() -> Optional[LockMonitor]:
    """Restore the real allocators; returns the retiring monitor."""
    global _MONITOR
    with _INSTALL_MU:
        retiring = _MONITOR
        _MONITOR = None
        threading.Lock = _real_lock  # type: ignore[assignment]
        threading.RLock = _real_rlock  # type: ignore[assignment]
        return retiring


__all__ = [
    "InstrumentedLock",
    "LockMonitor",
    "LockSite",
    "install",
    "monitor",
    "uninstall",
]
