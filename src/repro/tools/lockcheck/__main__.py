"""``python -m repro.tools.lockcheck`` entry point."""

import sys

from repro.tools.lockcheck.cli import main

if __name__ == "__main__":
    sys.exit(main())
