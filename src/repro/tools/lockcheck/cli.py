"""The repro-lockcheck command line: print the inferred lock hierarchy.

``python -m repro.tools.lockcheck [--json] paths...`` renders the
whole-program lock-acquisition-order graph that tangolint's TL011 rule
checks: one node per lock attribute (``Class.attr``), one edge per
witnessed acquire-while-holding, plus the guarded attributes each lock
protects and a topological order when the graph is acyclic. Exits 0
when the hierarchy is acyclic, 1 when any cycle exists, 2 on usage
errors. ``docs/CONCURRENCY.md`` records the expected output for this
repo.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.tools.discovery import iter_python_files
from repro.tools.lint.engine import parse_module
from repro.tools.lint.rules.concurrency import LockGraph, build_lock_graph


def _default_paths() -> List[str]:
    candidate = os.path.join("src", "repro")
    return [candidate] if os.path.isdir(candidate) else ["."]


def _load_graph(paths: Sequence[str]) -> LockGraph:
    modules = []
    for path in iter_python_files(paths):
        module, error = parse_module(path)
        if module is not None:
            modules.append(module)
        elif error is not None:
            print(f"lockcheck: skipping unparsable {path}", file=sys.stderr)
    return build_lock_graph(modules)


def render_text(graph: LockGraph) -> str:
    lines = ["lockcheck: static lock hierarchy", ""]
    if not graph.nodes:
        lines.append("  (no locks found)")
        return "\n".join(lines)
    lines.append("locks:")
    for node in sorted(graph.nodes):
        path, line = graph.nodes[node]
        where = f"{path}:{line}" if path else "(inherited)"
        lines.append(f"  {node}  [{where}]")
        guards = sorted(graph.guards.get(node, ()))
        if guards:
            lines.append(f"      guards: {', '.join(guards)}")
    if graph.edges:
        lines.append("")
        lines.append("order edges (held -> acquired):")
        for (source, target) in sorted(graph.edges):
            path, line = graph.edges[(source, target)]
            lines.append(f"  {source} -> {target}  [{path}:{line}]")
    cycles = graph.cycles()
    lines.append("")
    if cycles:
        lines.append("CYCLES (potential deadlocks):")
        for cycle in cycles:
            lines.append("  " + " -> ".join(cycle + [cycle[0]]))
    else:
        order = graph.topological_order() or []
        lines.append("acquisition order (safe): " + " < ".join(order))
    return "\n".join(lines)


def render_graph_json(graph: LockGraph) -> str:
    cycles = graph.cycles()
    payload = {
        "version": 1,
        "nodes": {
            node: {
                "path": path,
                "line": line,
                "guards": sorted(graph.guards.get(node, ())),
            }
            for node, (path, line) in sorted(graph.nodes.items())
        },
        "edges": [
            {"from": source, "to": target, "path": path, "line": line}
            for (source, target), (path, line) in sorted(graph.edges.items())
        ],
        "cycles": cycles,
        "topological_order": graph.topological_order(),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lockcheck",
        description=(
            "Print the statically inferred lock-acquisition hierarchy "
            "(the graph TL011 checks) and fail when it has a cycle."
        ),
    )
    parser.add_argument("paths", nargs="*", help="files or directories")
    parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    args = parser.parse_args(argv)
    paths = args.paths or _default_paths()
    for path in paths:
        if not os.path.exists(path):
            print(f"lockcheck: no such path: {path}", file=sys.stderr)
            return 2
    graph = _load_graph(paths)
    print(render_graph_json(graph) if args.json else render_text(graph))
    return 1 if graph.cycles() else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
