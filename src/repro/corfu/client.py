"""The CORFU client library.

Paper section 2.2: "The CORFU interface is simple, consisting of four
basic calls": ``append``, ``check``, ``read``, and ``trim``, plus the
``fill`` primitive for patching holes. Section 5 adds stream support:
appends may carry a set of stream ids, in which case the client obtains
backpointers from the sequencer and prepends stream headers to the
payload before running chain replication.

Every node interaction goes through the cluster's transport
(:mod:`repro.net`), and the client owns all retry logic:

- losing an append race (:class:`~repro.errors.WrittenError` at the
  chain head) fetches a fresh offset and tries again;
- a stale epoch (:class:`~repro.errors.SealedError`) refreshes the
  projection from the cluster and retries;
- a dead node (:class:`~repro.errors.NodeDownError`) triggers
  reconfiguration (ejecting the node or replacing the sequencer) and
  retries against the new projection;
- an RPC timeout (:class:`~repro.errors.RpcTimeout`) backs off,
  re-checks the projection (a reconfiguration may have raced the lost
  message), and retries; enough consecutive timeouts against one node
  and the client treats it as dead and reconfigures around it.

Timeout retries respect each RPC's idempotence: a lost sequencer
``increment`` response burns an offset, which the hole-filling
machinery absorbs; a lost chain-write response is retried against the
*same* offset with the same bytes, and the chain treats the client's
own earlier (invisible) success as success.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro.corfu.cluster import CorfuCluster
from repro.corfu.entry import (
    NO_BACKPOINTER,
    LogEntry,
    encode_vector_marker,
    make_header,
    max_payload_bytes,
)
from repro.corfu.layout import Projection
from repro.corfu.replication import ChainReplicator
from repro.errors import (
    NodeDownError,
    RetriesExhaustedError,
    RpcTimeout,
    SealedError,
    StaleGrantError,
    TooManyStreamsError,
    TrimmedError,
    UnwrittenError,
    WrittenError,
)

#: Per-offset outcome of a batched read: the decoded entry, or the
#: error *instance* (not raised) describing why the offset has none.
ReadOutcome = Union[LogEntry, UnwrittenError, TrimmedError]

#: Retry budget per bounded-retry path. Sized for the chaos suite's
#: worst fault mix (10% request drops + 10% response drops + 10%
#: reordering): a 3-hop chain write fails ~70% of attempts there, so a
#: budget of 64 leaves ~1e-10 odds of a healthy-but-lossy deployment
#: exhausting it — Hypothesis searching the seeded fault schedule
#: cannot find a losing run, while a genuinely dead node still
#: surfaces through the failure detector long before the budget.
_MAX_RETRIES = 64

#: Consecutive timeouts against one node before the client stops
#: treating them as transient and drives reconfiguration around it
#: (the failure-detector threshold).
_TIMEOUT_FAILOVER = 4

#: Second failure-detector signal: a node that stays *silent* (no
#: deliveries at all) while the rest of the cluster completes this many
#: RPCs is partitioned or dead, however rarely we manage to probe it.
#: Catches a cut-off chain tail behind a lossy chain head, where each
#: shared-budget retry burns on the lossy-but-live hops and the streak
#: above accrues too slowly.
_SILENT_PROGRESS_FAILOVER = 12

#: Most appends one pipeline leader commits per round before re-checking
#: the queue. Bounds both the sequencer grant width and the payload the
#: leader buffers; the chain-level in-flight window
#: (:data:`repro.corfu.replication.DEFAULT_PIPELINE_WINDOW`) throttles
#: below this.
_PIPELINE_CHUNK = 32

#: How long a pipeline follower waits on its completion event before
#: re-checking whether leadership freed up (guards against the leader
#: exiting between the follower's enqueue and the leader's last queue
#: check — the follower then takes over rather than sleeping forever).
_FOLLOWER_WAIT_SLICE = 0.005


class AppendFuture:
    """Completion handle for one :meth:`CorfuClient.append_async`.

    The append is durable once :meth:`done` is true and :meth:`result`
    returns the assigned log offset. There is no background thread:
    appends are committed by whichever waiter thread becomes the
    pipeline *leader* (see ``_AppendPipeline``), so a lone
    ``append_async(...).result()`` costs the same as a synchronous
    ``append``.
    """

    __slots__ = ("payload", "stream_ids", "_client", "_done", "_offset", "_exc")

    def __init__(
        self, client: "CorfuClient", payload: bytes, stream_ids: Tuple[int, ...]
    ) -> None:
        self._client = client
        self.payload = payload
        self.stream_ids = stream_ids
        self._done = threading.Event()
        self._offset: Optional[int] = None
        self._exc: Optional[BaseException] = None

    def done(self) -> bool:
        """True once the append completed (successfully or not)."""
        return self._done.is_set()

    def _resolve(self, offset: int) -> None:
        self._offset = offset
        self._done.set()

    def _fail(self, exc: BaseException) -> None:
        self._exc = exc
        self._done.set()

    def result(self, timeout: Optional[float] = None) -> int:
        """Block until the append lands; return its log offset.

        The calling thread participates in committing queued appends
        (it may be elected pipeline leader). Re-raises the append's
        failure, or :class:`~repro.errors.RpcTimeout` if *timeout*
        elapses first — the append may still complete later (a late
        ack, like any timed-out RPC).
        """
        self._client._pipeline.drive(self, timeout)
        if not self._done.is_set():
            raise RpcTimeout("append-pipeline", "result")
        if self._exc is not None:
            raise self._exc
        return self._offset  # type: ignore[return-value]


class _AppendPipeline:
    """Work-stealing group commit behind :meth:`CorfuClient.append_async`.

    Queued futures are drained by a *leader*: the first waiter to find
    the queue non-empty and no leader active. The leader pops a chunk,
    groups consecutive futures with identical stream sets into one
    sequencer grant + pipelined chain write (``append_batch`` →
    ``ChainReplicator.write_pipelined``), resolves their futures, and
    loops until the queue is empty. Followers wait on their own
    completion events with a short timeout so a leader that exits just
    before their enqueue is noticed and replaced — no lost wakeups, no
    background thread, and a single uncontended append runs inline on
    its caller's thread exactly like the old synchronous path.

    Lock discipline: ``_lock`` guards only the queue and the leader
    flag; it is never held across an RPC (TL012) and takes no other
    lock (a leaf in the documented hierarchy).
    """

    def __init__(self, client: "CorfuClient") -> None:
        self._client = client
        # Guards _queue and _leading.
        self._lock = threading.Lock()
        self._queue: Deque[AppendFuture] = deque()
        self._leading = False

    def submit(self, fut: AppendFuture) -> None:
        with self._lock:
            self._queue.append(fut)

    def drive(self, fut: AppendFuture, timeout: Optional[float] = None) -> None:
        """Wait for *fut*, leading the pipeline whenever it is leaderless."""
        remaining = timeout
        while not fut.done():
            lead = False
            with self._lock:
                if not self._leading and self._queue:
                    self._leading = True
                    lead = True
            if lead:
                try:
                    self._drain()
                finally:
                    with self._lock:
                        self._leading = False
                continue
            if fut.done():
                return
            wait = (
                _FOLLOWER_WAIT_SLICE
                if remaining is None
                else min(_FOLLOWER_WAIT_SLICE, remaining)
            )
            fut._done.wait(wait)
            if remaining is not None:
                remaining -= wait
                if remaining <= 0 and not fut.done():
                    return

    def _drain(self) -> None:
        while True:
            with self._lock:
                if not self._queue:
                    return
                chunk = [
                    self._queue.popleft()
                    for _ in range(min(len(self._queue), _PIPELINE_CHUNK))
                ]
            self._commit(chunk)

    def _commit(self, chunk: List[AppendFuture]) -> None:
        client = self._client
        i = 0
        while i < len(chunk):
            j = i
            while j < len(chunk) and chunk[j].stream_ids == chunk[i].stream_ids:
                j += 1
            run = chunk[i:j]
            try:
                if len(run) == 1:
                    run[0]._resolve(
                        client._append_sync(run[0].payload, run[0].stream_ids)
                    )
                else:
                    offsets = client.append_batch(
                        [f.payload for f in run], run[0].stream_ids
                    )
                    for fut, offset in zip(run, offsets):
                        fut._resolve(offset)
            except BaseException as exc:  # tangolint: disable=TL006
                # Not swallowed: the leader commits on behalf of other
                # threads, so the failure is captured into each waiter's
                # future and re-raised from result(). The protocol's
                # retry discipline already ran inside _append_sync /
                # append_batch below this frame.
                for fut in run:
                    if not fut.done():
                        fut._fail(exc)
                if not isinstance(exc, Exception):
                    # KeyboardInterrupt and friends: the waiters have
                    # their answer; unwind the leader thread too.
                    raise
            i = j


class CorfuClient:
    """One client's handle on the shared log."""

    def __init__(self, cluster: CorfuCluster, name: Optional[str] = None) -> None:
        self._cluster = cluster
        self._net = cluster.transport
        self.name = name if name is not None else cluster.next_client_name()
        self._projection: Projection = cluster.projection
        self._proxies: Dict[Tuple[str, str], object] = {}
        self._chain = ChainReplicator(self._storage_rpc)
        # node name -> (consecutive-timeout streak, delivered-RPC count
        # at the last timeout, cluster-wide delivered count when the
        # node went silent) for failure detection: only a *silent* node
        # builds a streak, and cluster-wide progress during its silence
        # is the second down-signal.
        self._timeout_streaks: Dict[str, Tuple[int, int, int]] = {}
        # Counters for tests / the performance model. A client is shared
        # across application threads, so the read-modify-write bumps go
        # through one lock; readers may still access the plain ints.
        self._counter_lock = threading.Lock()
        self.appends = 0
        self.reads = 0
        self.fills = 0
        #: Batched-read observability: ``read_many`` rounds completed
        #: and entries served through them.
        self.batched_reads = 0
        self.batched_read_offsets = 0
        # Trim observers (e.g. the stream layer's entry cache), called
        # as cb(offset, is_prefix) after a trim commits cluster-side.
        self._trim_watchers: List[Callable[[int, bool], None]] = []
        # Async append path: queued futures committed by an elected
        # leader thread (see _AppendPipeline). append() rides on it.
        self._pipeline = _AppendPipeline(self)

    # -- transport plumbing --------------------------------------------------

    def _storage_rpc(self, node: str):
        """This client's transport handle on storage node *node*."""
        key = ("storage", node)
        proxy = self._proxies.get(key)
        if proxy is None:
            cluster = self._cluster
            proxy = self._net.proxy(
                self.name, node, lambda n=node: cluster.storage(n)
            )
            self._proxies[key] = proxy
        return proxy

    def _sequencer_rpc(self, node: str):
        """This client's transport handle on sequencer *node*."""
        key = ("sequencer", node)
        proxy = self._proxies.get(key)
        if proxy is None:
            cluster = self._cluster
            proxy = self._net.proxy(
                self.name, node, lambda n=node: cluster.sequencer(n)
            )
            self._proxies[key] = proxy
        return proxy

    def net_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-endpoint transport counters (rpcs/retries/timeouts/...).

        Each endpoint dict also carries the batched-read counters
        ``batch_rpcs`` (delivered ``read_many`` calls) and
        ``batch_offsets`` (offsets those calls served), so the RPC
        savings of the batched read path are visible per node.
        """
        return self._net.endpoint_stats()

    # -- trim observers ------------------------------------------------------

    def subscribe_trim(self, callback: Callable[[int, bool], None]) -> None:
        """Register ``callback(offset, is_prefix)`` to run after trims.

        The stream layer uses this to evict cached entries for reclaimed
        offsets, so GC actually frees client memory. Callbacks run on
        the trimming thread after the cluster-side trim succeeds.
        """
        self._trim_watchers.append(callback)

    def _notify_trim(self, offset: int, is_prefix: bool) -> None:
        for callback in self._trim_watchers:
            callback(offset, is_prefix)

    # -- projection management ----------------------------------------------

    @property
    def projection(self) -> Projection:
        return self._projection

    @property
    def max_payload(self) -> int:
        """Payload capacity of one log entry under this deployment."""
        return max_payload_bytes(
            self._cluster.entry_size, self._cluster.max_streams, self._cluster.k
        )

    @property
    def max_streams(self) -> int:
        """Maximum streams per entry (caps a transaction's write set)."""
        return self._cluster.max_streams

    def refresh_projection(self) -> None:
        """Fetch the latest projection from the auxiliary."""
        self._projection = self._cluster.projection

    def _handle_node_down(self, exc: NodeDownError) -> None:
        """React to a dead node by driving reconfiguration, then refresh."""
        from repro.corfu import reconfig

        # Another client may have reconfigured already; check the latest
        # projection before driving a redundant epoch change.
        self.refresh_projection()
        proj = self._projection
        if exc.node == proj.sequencer and not proj.seq_shards:
            reconfig.replace_sequencer(self._cluster, source=self.name)
        elif exc.node in proj.sequencer_shards:
            # Per-shard failover: only the dead shard is replaced; the
            # surviving shards keep their soft state and keep issuing.
            reconfig.replace_sequencer_shard(
                self._cluster,
                proj.sequencer_shards.index(exc.node),
                source=self.name,
            )
        elif exc.node in proj.all_nodes():
            reconfig.eject_storage_node(self._cluster, exc.node, source=self.name)
        self.refresh_projection()

    def _handle_timeout(self, exc: RpcTimeout, attempt: int) -> None:
        """Epoch-safe timeout reaction: backoff, refresh, maybe fail over.

        A timeout is ambiguous — the node may be slow, partitioned from
        us, or dead, and a reconfiguration may have completed while our
        message was in flight. So: record the retry, let the transport
        advance (delayed traffic gets delivered during backoff), refetch
        the projection, and once the per-node streak crosses the
        failure-detector threshold, treat the node as down and
        reconfigure around it.
        """
        self._net.record_retry(exc.node)
        self._net.backoff(self.name, attempt)
        self.refresh_projection()
        # A node that executed *anything* since our last timeout against
        # it is alive — we are losing responses, not talking to a corpse
        # — so the streak restarts. Only a silent node (partitioned or
        # dead: no deliveries at all) accumulates toward failover;
        # ejecting a node that is demonstrably executing calls would let
        # a lossy network shrink healthy chains one retry at a time.
        delivered = self._net.stats_for(exc.node).rpcs
        cluster_delivered = sum(
            s["rpcs"] for s in self._net.endpoint_stats().values()
        )
        with self._counter_lock:
            streak, seen, progress_base = self._timeout_streaks.get(
                exc.node, (0, -1, cluster_delivered)
            )
            if delivered != seen:
                streak = 0
                progress_base = cluster_delivered
            streak += 1
            self._timeout_streaks[exc.node] = (streak, delivered, progress_base)
            # Down-signals: (a) enough consecutive silent timeouts, or
            # (b) the node stayed silent across substantial cluster-wide
            # progress — a partitioned chain tail behind lossy live hops
            # gets probed too rarely for (a) alone to ever trip.
            failover = streak >= _TIMEOUT_FAILOVER or (
                streak > 1
                and cluster_delivered - progress_base
                >= _SILENT_PROGRESS_FAILOVER
            )
            if failover:
                del self._timeout_streaks[exc.node]
        # Reconfiguration drives RPCs of its own; never under the lock.
        if failover:
            self._handle_node_down(NodeDownError(exc.node))

    def _note_success(self) -> None:
        """An RPC round completed: clear the failure-detector streaks."""
        with self._counter_lock:
            self._timeout_streaks.clear()

    # -- append path ---------------------------------------------------------

    def append(self, payload: bytes, stream_ids: Sequence[int] = ()) -> int:
        """Append *payload* to the log (and to *stream_ids*); return its offset.

        This is the multiappend of section 4.1 when more than one stream
        id is given: the entry occupies a single position in the global
        order but belongs to every listed stream.

        Expressed on the async path: ``append_async(...).result()``.
        A lone call runs inline on the calling thread (same cost as the
        classic synchronous append); concurrent callers are coalesced
        into shared sequencer grants and pipelined chain writes by the
        pipeline leader.
        """
        return self.append_async(payload, stream_ids).result()

    def append_async(
        self, payload: bytes, stream_ids: Sequence[int] = ()
    ) -> AppendFuture:
        """Queue *payload* for append; return a completion handle.

        Validation (stream count, payload capacity) happens here,
        synchronously. The append itself is committed by the pipeline
        leader — whichever thread next waits on a handle — so callers
        may queue a flight of appends and then collect the offsets,
        overlapping sequencer grants and chain hops across the flight.
        """
        self._validate_append(payload, stream_ids)
        fut = AppendFuture(self, payload, tuple(stream_ids))
        self._pipeline.submit(fut)
        return fut

    def _validate_append(self, payload: bytes, stream_ids: Sequence[int]) -> None:
        if len(stream_ids) > self._cluster.max_streams:
            raise TooManyStreamsError(len(stream_ids), self._cluster.max_streams)
        limit = max_payload_bytes(
            self._cluster.entry_size, self._cluster.max_streams, self._cluster.k
        )
        if len(payload) > limit:
            raise ValueError(
                f"payload of {len(payload)} bytes exceeds the "
                f"{limit}-byte capacity of a {self._cluster.entry_size}-byte entry"
            )

    def _append_sync(self, payload: bytes, stream_ids: Sequence[int] = ()) -> int:
        """The classic synchronous append retry loop.

        Internal callers (the pipeline leader, batch fallbacks) use
        this directly — routing them through :meth:`append` would
        re-enter the pipeline a leader is already driving.
        """
        for attempt in range(_MAX_RETRIES):
            try:
                offset = self._append_once(payload, stream_ids)
            except WrittenError:
                continue  # lost the race; take a new offset
            except StaleGrantError:
                # A racing single-shard append outran our vector grant;
                # the reserved offsets are burned (holes) and the whole
                # grant restarts from fresh reservations.
                continue
            except SealedError:
                self.refresh_projection()
            except NodeDownError as exc:
                self._handle_node_down(exc)
            except RpcTimeout as exc:
                # The increment may have executed (lost response): that
                # offset is burned and becomes a hole for fill() to
                # patch. Retrying with a fresh offset is always safe.
                self._handle_timeout(exc, attempt)
            else:
                self._note_success()
                return offset
        raise RetriesExhaustedError("append", _MAX_RETRIES)

    def _append_once(self, payload: bytes, stream_ids: Sequence[int]) -> int:
        proj = self._projection
        shards = proj.sequencer_shards
        groups = sorted({sid % len(shards) for sid in stream_ids})
        if len(groups) > 1:
            return self._append_vector(proj, payload, stream_ids, groups)
        # Single-group appends — the common case — touch exactly one
        # shard's lock; a streamless append goes to shard 0.
        seq = self._sequencer_rpc(shards[groups[0] if groups else 0])
        offset, backpointers = seq.increment(stream_ids, epoch=proj.epoch)
        headers = tuple(
            make_header(sid, backpointers[sid], offset, self._cluster.k)
            for sid in stream_ids
        )
        entry = LogEntry(headers=headers, payload=payload)
        raw = entry.encode(offset, self._cluster.k, self._cluster.max_streams)
        self._complete_write(offset, raw)
        with self._counter_lock:
            self.appends += 1
        return offset

    def _append_vector(
        self,
        proj: Projection,
        payload: bytes,
        stream_ids: Sequence[int],
        groups: Sequence[int],
    ) -> int:
        """Cross-shard multiappend via a two-phase vector grant.

        Phase 1 reserves one stripe offset per touched shard in
        ascending (canonical) shard order with a ratcheting floor, so
        the last reservation is the vector's maximum — the offset the
        entry is written at. Phase 2 commits that offset to each
        touched shard (same order), which records it as every touched
        stream's newest offset or rejects with
        :class:`~repro.errors.StaleGrantError` if a racing append got
        there first. The burned lower reservations get marker entries
        naming the final offset so per-stripe recovery still finds the
        cross-shard entry; then the data entry is written once.

        No client-side lock is held across any of these RPCs, and the
        shard locks are only ever taken one at a time server-side, so
        the lock hierarchy gains no edges (TL011/TL012).
        """
        shards = proj.sequencer_shards
        per_group: Dict[int, List[int]] = {}
        for sid in stream_ids:
            per_group.setdefault(sid % len(shards), []).append(sid)
        reservations: List[Tuple[int, int]] = []  # (group, reserved offset)
        floor = 0
        for g in groups:
            r = self._sequencer_rpc(shards[g]).reserve_group(
                floor, epoch=proj.epoch
            )
            reservations.append((g, r))
            floor = r + 1
        offset = reservations[-1][1]
        backpointers: Dict[int, Tuple[int, ...]] = {}
        for g in groups:
            backpointers.update(
                self._sequencer_rpc(shards[g]).commit_group(
                    per_group[g], offset, epoch=proj.epoch
                )
            )
        # Markers before the data entry: once the entry is visible, its
        # cross-shard membership must already be recoverable by a
        # per-stripe backward scan.
        for g, reserved in reservations[:-1]:
            marker = LogEntry(
                headers=(),
                payload=encode_vector_marker(offset, per_group[g]),
            )
            raw = marker.encode(
                reserved, self._cluster.k, self._cluster.max_streams
            )
            try:
                self._complete_write(reserved, raw)
            except WrittenError:
                # A hole-filler junked the reservation first. The live
                # shard already recorded the grant; only a later crash
                # of that shard loses this one advisory backpointer,
                # which K-redundancy absorbs.
                pass
        headers = tuple(
            make_header(sid, backpointers[sid], offset, self._cluster.k)
            for sid in stream_ids
        )
        entry = LogEntry(headers=headers, payload=payload)
        raw = entry.encode(offset, self._cluster.k, self._cluster.max_streams)
        self._complete_write(offset, raw)
        with self._counter_lock:
            self.appends += 1
        return offset

    # -- batched append path -------------------------------------------------

    def append_batch(
        self, payloads: Sequence[bytes], stream_ids: Sequence[int] = ()
    ) -> List[int]:
        """Append several payloads with a single sequencer grant.

        Reserves ``len(payloads)`` consecutive offsets in one
        ``increment(count=n)`` RPC (section 5's counter, batched the way
        group commit batches log I/O), then drives one chain write per
        entry. Every payload joins every stream in *stream_ids*, and
        each entry's backpointers chain through its batch predecessors,
        so the resulting stream linked list is identical to sequential
        appends. Returns the offsets in payload order.

        A lost ``increment`` response burns the whole reservation — n
        holes, which the hole-filling machinery absorbs, exactly like a
        burned single grant. If a hole-filler races one of our chain
        writes and wins, that payload transparently retries through the
        single-append path at a fresh offset.
        """
        if not payloads:
            return []
        if len(stream_ids) > self._cluster.max_streams:
            raise TooManyStreamsError(len(stream_ids), self._cluster.max_streams)
        limit = self.max_payload
        for payload in payloads:
            if len(payload) > limit:
                raise ValueError(
                    f"payload of {len(payload)} bytes exceeds the "
                    f"{limit}-byte capacity of a "
                    f"{self._cluster.entry_size}-byte entry"
                )
        count = len(payloads)
        for attempt in range(_MAX_RETRIES):
            proj = self._projection
            shards = proj.sequencer_shards
            groups = sorted({sid % len(shards) for sid in stream_ids})
            if len(groups) > 1:
                # A batch spanning shard groups would need one vector
                # grant per entry anyway; take the per-entry path.
                return [self._append_sync(p, stream_ids) for p in payloads]
            seq = self._sequencer_rpc(shards[groups[0] if groups else 0])
            try:
                first, backpointers = seq.increment(
                    stream_ids, epoch=proj.epoch, count=count
                )
            except SealedError:
                self.refresh_projection()
            except NodeDownError as exc:
                self._handle_node_down(exc)
            except RpcTimeout as exc:
                # The reservation may have executed (lost response):
                # those offsets are burned and become holes for fill()
                # to patch. A fresh reservation is always safe.
                self._handle_timeout(exc, attempt)
            else:
                self._note_success()
                return self._write_batch(
                    first, payloads, stream_ids, backpointers,
                    stride=len(shards),
                )
        raise RetriesExhaustedError("append_batch", _MAX_RETRIES)

    def _write_batch(
        self,
        first: int,
        payloads: Sequence[bytes],
        stream_ids: Sequence[int],
        backpointers: Dict[int, Tuple[int, ...]],
        stride: int = 1,
    ) -> List[int]:
        """Chain-write a reserved batch; entry i backpoints into the batch.

        *stride* is the reservation spacing: 1 for the classic dense
        sequencer, the shard count for a striped shard (whose grant
        covers offsets ``first, first + stride, ...``).

        The chain writes are *pipelined*: entries are grouped by
        replica chain and streamed down each chain with overlapping
        hops (:meth:`ChainReplicator.write_pipelined`). Per-address
        outcomes drive recovery exactly as the sequential path did —
        a head ``WrittenError`` (hole-filler raced the reservation)
        sends that payload to a fresh offset, and any node-level error
        re-drives the same offset with ``maybe_mine`` so a partially
        streamed entry is completed, never duplicated.
        """
        k = self._cluster.k
        prior = {
            sid: [p for p in backpointers[sid] if p != NO_BACKPOINTER]
            for sid in stream_ids
        }
        entries: List[Tuple[int, bytes]] = []  # (offset, raw), payload order
        for i, payload in enumerate(payloads):
            offset = first + i * stride
            headers = tuple(
                make_header(
                    sid,
                    tuple(range(offset - stride, first - 1, -stride))
                    + tuple(prior[sid]),
                    offset,
                    k,
                )
                for sid in stream_ids
            )
            entry = LogEntry(headers=headers, payload=payload)
            entries.append((offset, entry.encode(offset, k, self._cluster.max_streams)))
        offsets: List[int] = [offset for offset, _ in entries]
        proj = self._projection
        num_sets = len(proj.replica_sets)
        groups: Dict[int, List[int]] = {}  # replica-set index -> entry indices
        for idx, (offset, _) in enumerate(entries):
            groups.setdefault(offset % num_sets, []).append(idx)
        retry: List[Tuple[int, BaseException]] = []  # (entry index, first outcome)
        for set_index in sorted(groups):
            idxs = groups[set_index]
            rset = proj.replica_sets[set_index]
            writes: List[Tuple[int, bytes]] = []
            by_address: Dict[int, int] = {}
            for idx in idxs:
                offset, raw = entries[idx]
                _, address = proj.map_offset(offset)
                by_address[address] = idx
                writes.append((address, raw))
            outcomes = self._chain.write_pipelined(rset, writes, proj.epoch)
            for address, outcome in sorted(outcomes.items()):
                if outcome is None:
                    continue
                if isinstance(outcome, AssertionError):
                    raise outcome  # chain divergence: a bug, not a retry
                retry.append((by_address[address], outcome))
        for idx, outcome in sorted(retry):
            offset, raw = entries[idx]
            if isinstance(outcome, WrittenError):
                # A hole-filler patched our reserved offset before the
                # write landed; the payload takes a fresh offset via the
                # ordinary append retry loop. Stream membership is
                # preserved (the junk-filled offset is skipped by
                # walkers), only the position moves.
                offsets[idx] = self._append_sync(payloads[idx], stream_ids)
            else:
                # Sealed / node down / timeout with the entry possibly
                # part-way down the chain: finish the same offset;
                # maybe_mine from the first retry attempt keeps the
                # earlier partial delivery from counting twice.
                self._complete_write(offset, raw, maybe_mine_from_start=True)
        with self._counter_lock:
            self.appends += sum(
                1 for idx in range(len(entries)) if offsets[idx] == entries[idx][0]
            )
        return offsets

    def _complete_write(
        self, offset: int, raw: bytes, maybe_mine_from_start: bool = False
    ) -> None:
        """Drive the chain write for an offset this client owns.

        Once the head write may have landed (any failed attempt), the
        offset must not be abandoned on a timeout — the invisible
        earlier success would otherwise surface as a duplicate entry
        when the client appends the payload again elsewhere. Retries
        therefore target the *same* offset with the same bytes and tell
        the chain that a head ``WrittenError`` over identical bytes is
        our own write (``maybe_mine``). A genuine race loss (different
        bytes at the head) propagates ``WrittenError`` to ``append``,
        which takes a fresh offset.

        *maybe_mine_from_start* is set by callers whose first delivery
        attempt already happened elsewhere (the pipelined batch path),
        so even attempt zero here is a retry of an ambiguous write.
        """
        for attempt in range(_MAX_RETRIES):
            proj = self._projection
            rset, address = proj.map_offset(offset)
            try:
                self._chain.write(
                    rset, address, raw, proj.epoch,
                    maybe_mine=maybe_mine_from_start or attempt > 0,
                )
                return
            except SealedError:
                # Reconfigured mid-write: finish the chain under the
                # new projection; the offset is still ours.
                self.refresh_projection()
            except NodeDownError as exc:
                self._handle_node_down(exc)
            except RpcTimeout as exc:
                self._handle_timeout(exc, attempt)
        raise RetriesExhaustedError("append.chain_write", _MAX_RETRIES)

    # -- read path ------------------------------------------------------------

    def read(self, offset: int) -> LogEntry:
        """Read and decode the entry at *offset*.

        Raises :class:`UnwrittenError` for holes and
        :class:`TrimmedError` for reclaimed offsets.
        """
        for attempt in range(_MAX_RETRIES):
            proj = self._projection
            rset, address = proj.map_offset(offset)
            try:
                raw = self._chain.read(rset, address, proj.epoch)
            except SealedError:
                self.refresh_projection()
                continue
            except NodeDownError as exc:
                self._handle_node_down(exc)
                continue
            except RpcTimeout as exc:
                self._handle_timeout(exc, attempt)
                continue
            with self._counter_lock:
                self.reads += 1
            self._note_success()
            return LogEntry.decode(raw, offset, self._cluster.k)
        raise RetriesExhaustedError("read", _MAX_RETRIES)

    def read_many(self, offsets: Sequence[int]) -> Dict[int, ReadOutcome]:
        """Batched read: one storage round trip per replica node.

        Offsets are grouped by :meth:`Projection.map_offset`, so each
        chain's tail receives exactly the addresses it owns in a single
        ``read_many`` RPC. Returns ``{offset: outcome}`` where the
        outcome is the decoded :class:`LogEntry`, or an
        :class:`UnwrittenError` / :class:`TrimmedError` *instance* for
        holes and reclaimed offsets — per-offset conditions are data and
        never fail the batch.

        The full retry discipline of the single read applies (sealed
        epoch → refresh, dead node → reconfigure, timeout → backoff /
        failure-detect), and results already collected are retained
        across retries: a reconfiguration halfway through the groups
        re-reads only what is still missing.
        """
        results: Dict[int, ReadOutcome] = {}
        remaining = sorted(set(offsets))
        if not remaining:
            return results
        for attempt in range(_MAX_RETRIES):
            proj = self._projection
            # Group the missing offsets by replica set under the current
            # projection; the grouping is redone per attempt because a
            # reconfiguration changes the mapping.
            groups: Dict[int, List[int]] = {}
            n = len(proj.replica_sets)
            for offset in remaining:
                groups.setdefault(offset % n, []).append(offset)
            try:
                for set_index in sorted(groups):
                    batch = groups[set_index]
                    rset = proj.replica_sets[set_index]
                    addresses = [offset // n for offset in batch]
                    raw_map = self._chain.read_many(
                        rset, addresses, proj.epoch
                    )
                    served = 0
                    for offset, address in zip(batch, addresses):
                        status, data = raw_map[address]
                        if status == "ok":
                            results[offset] = LogEntry.decode(
                                data, offset, self._cluster.k
                            )
                            served += 1
                        elif status == "trimmed":
                            results[offset] = TrimmedError(offset)
                        else:
                            results[offset] = UnwrittenError(offset)
                    with self._counter_lock:
                        self.reads += served
                        self.batched_reads += 1
                        self.batched_read_offsets += len(batch)
                    remaining = [o for o in remaining if o not in results]
            except SealedError:
                self.refresh_projection()
            except NodeDownError as exc:
                self._handle_node_down(exc)
            except RpcTimeout as exc:
                self._handle_timeout(exc, attempt)
            else:
                self._note_success()
                return results
        raise RetriesExhaustedError("read_many", _MAX_RETRIES)

    def is_written(self, offset: int) -> bool:
        """True if *offset* is owned by some append (even one in flight)."""
        for attempt in range(_MAX_RETRIES):
            proj = self._projection
            rset, address = proj.map_offset(offset)
            try:
                written = self._chain.is_written(rset, address, proj.epoch)
            except SealedError:
                self.refresh_projection()
            except NodeDownError as exc:
                self._handle_node_down(exc)
            except RpcTimeout as exc:
                self._handle_timeout(exc, attempt)
            else:
                self._note_success()
                return written
        raise RetriesExhaustedError("is_written", _MAX_RETRIES)

    # -- check ---------------------------------------------------------------

    def check(self, fast: bool = True) -> int:
        """Return the current tail of the log.

        The fast check is one round-trip to the sequencer
        (sub-millisecond in the paper); the slow check queries every
        storage node for its local tail and inverts the mapping function
        (tens of milliseconds), and works with no sequencer at all.
        """
        if fast:
            for attempt in range(_MAX_RETRIES):
                proj = self._projection
                try:
                    tail = 0
                    for name in proj.sequencer_shards:
                        shard_tail, _ = self._sequencer_rpc(name).query(
                            (), epoch=proj.epoch
                        )
                        tail = max(tail, shard_tail)
                except SealedError:
                    self.refresh_projection()
                except NodeDownError as exc:
                    self._handle_node_down(exc)
                except RpcTimeout as exc:
                    self._handle_timeout(exc, attempt)
                else:
                    self._note_success()
                    return tail
            raise RetriesExhaustedError("check", _MAX_RETRIES)
        return self._slow_check()

    def _slow_check(self) -> int:
        """Query storage-node local tails and invert the mapping."""
        proj = self._projection
        tail = 0
        for set_index, rset in enumerate(proj.replica_sets):
            local_tail = 0
            for node in rset:
                try:
                    local_tail = max(
                        local_tail, self._local_tail_rpc(node)
                    )
                except NodeDownError:
                    continue
            if local_tail > 0:
                tail = max(tail, proj.global_offset(set_index, local_tail - 1) + 1)
        return tail

    def _local_tail_rpc(self, node: str) -> int:
        """One node's local tail, with bounded per-node timeout retries.

        A persistently unreachable node is treated as down for the slow
        check's purposes: its chain peers hold the same local tail.
        """
        for attempt in range(_TIMEOUT_FAILOVER):
            try:
                return self._storage_rpc(node).local_tail()
            except RpcTimeout as exc:
                self._net.record_retry(exc.node)
                self._net.backoff(self.name, attempt)
        raise NodeDownError(node)

    def query_streams(
        self, stream_ids: Sequence[int]
    ) -> Tuple[int, Dict[int, Tuple[int, ...]]]:
        """Sequencer query: tail + last-K offsets for each stream.

        Only the shards owning the requested streams are queried (one
        RPC each), so a sync touching one stream costs one round trip
        regardless of shard count; the returned tail is the max over
        the queried shards. With no stream ids, every shard is queried
        (a full tail check).
        """
        for attempt in range(_MAX_RETRIES):
            proj = self._projection
            shards = proj.sequencer_shards
            per_shard: Dict[str, List[int]] = {}
            for sid in stream_ids:
                per_shard.setdefault(shards[sid % len(shards)], []).append(sid)
            if not per_shard:
                per_shard = {name: [] for name in shards}
            try:
                tail = 0
                merged: Dict[int, Tuple[int, ...]] = {}
                for name, sids in per_shard.items():
                    shard_tail, tails = self._sequencer_rpc(name).query(
                        sids, epoch=proj.epoch
                    )
                    tail = max(tail, shard_tail)
                    merged.update(tails)
            except SealedError:
                self.refresh_projection()
            except NodeDownError as exc:
                self._handle_node_down(exc)
            except RpcTimeout as exc:
                self._handle_timeout(exc, attempt)
            else:
                self._note_success()
                return tail, merged
        raise RetriesExhaustedError("query_streams", _MAX_RETRIES)

    # -- hole filling and reclamation -----------------------------------------

    def fill(self, offset: int) -> None:
        """Patch the hole at *offset* with a junk value.

        Used after a timeout when a crashed client reserved an offset but
        never wrote it (section 3.2, "Failure Handling"). If the original
        writer races us and wins, that is success too: the hole is gone.
        A duplicated or timed-out fill is likewise absorbed — junk bytes
        are identical no matter who writes them.
        """
        junk = LogEntry.junk().encode(offset, self._cluster.k, self._cluster.max_streams)
        for attempt in range(_MAX_RETRIES):
            proj = self._projection
            rset, address = proj.map_offset(offset)
            try:
                self._chain.write(rset, address, junk, proj.epoch)
                with self._counter_lock:
                    self.fills += 1
                self._note_success()
                return
            except WrittenError:
                self._note_success()
                return  # no longer a hole — either filled or completed
            except SealedError:
                self.refresh_projection()
            except NodeDownError as exc:
                self._handle_node_down(exc)
            except RpcTimeout as exc:
                self._handle_timeout(exc, attempt)
        raise RetriesExhaustedError("fill", _MAX_RETRIES)

    def trim(self, offset: int) -> None:
        """Mark one offset as reclaimable.

        Trim is idempotent on every replica, so the standard retry path
        (sealed epoch → refresh; dead node → reconfigure; timeout →
        backoff and retry) applies without any at-most-once caveats. A
        trim racing a reconfiguration must not leak ``SealedError`` to
        the application — the GC driving it has no projection to refresh.
        """
        for attempt in range(_MAX_RETRIES):
            proj = self._projection
            rset, address = proj.map_offset(offset)
            try:
                self._chain.trim(rset, address, proj.epoch)
            except SealedError:
                self.refresh_projection()
            except NodeDownError as exc:
                self._handle_node_down(exc)
            except RpcTimeout as exc:
                self._handle_timeout(exc, attempt)
            else:
                self._note_success()
                self._notify_trim(offset, False)
                return
        raise RetriesExhaustedError("trim", _MAX_RETRIES)

    def trim_prefix(self, offset: int) -> None:
        """Reclaim every offset strictly below *offset* (sequential trim).

        Idempotent per replica set; a retry after a partial pass simply
        re-trims already-trimmed prefixes.
        """
        for attempt in range(_MAX_RETRIES):
            proj = self._projection
            n = len(proj.replica_sets)
            try:
                for set_index, rset in enumerate(proj.replica_sets):
                    if offset > set_index:
                        local_count = (offset - set_index + n - 1) // n
                    else:
                        local_count = 0
                    self._chain.trim_prefix(rset, local_count, proj.epoch)
            except SealedError:
                self.refresh_projection()
            except NodeDownError as exc:
                self._handle_node_down(exc)
            except RpcTimeout as exc:
                self._handle_timeout(exc, attempt)
            else:
                self._note_success()
                self._notify_trim(offset, True)
                return
        raise RetriesExhaustedError("trim_prefix", _MAX_RETRIES)

    # -- storage-admin plane ---------------------------------------------------

    def store_status(self) -> Dict[str, Dict[str, object]]:
        """Per-node storage accounting over the wire (read-only RPC).

        Best effort by design: an unreachable or sealed node reports an
        ``{"error": ...}`` entry instead of failing the whole survey —
        operators want the view of whatever is up.
        """
        proj = self._projection
        nodes: Dict[str, Dict[str, object]] = {}
        for rset in proj.replica_sets:
            for node in rset:
                if node in nodes:
                    continue
                try:
                    nodes[node] = self._storage_rpc(node).store_status()
                except (SealedError, NodeDownError, RpcTimeout) as exc:
                    nodes[node] = {"error": type(exc).__name__}
        return nodes

    def compact(self) -> Dict[str, Dict[str, object]]:
        """Trigger one compaction sweep on every reachable storage node.

        Idempotent: a sweep that finds no garbage-heavy segments is a
        no-op, so re-running after a partial failure only re-sweeps.
        Down nodes report ``{"error": ...}`` entries like
        :meth:`store_status`.
        """
        proj = self._projection
        nodes: Dict[str, Dict[str, object]] = {}
        for rset in proj.replica_sets:
            for node in rset:
                if node in nodes:
                    continue
                try:
                    nodes[node] = self._storage_rpc(node).compact()
                except (SealedError, NodeDownError, RpcTimeout) as exc:
                    nodes[node] = {"error": type(exc).__name__}
        return nodes
