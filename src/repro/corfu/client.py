"""The CORFU client library.

Paper section 2.2: "The CORFU interface is simple, consisting of four
basic calls": ``append``, ``check``, ``read``, and ``trim``, plus the
``fill`` primitive for patching holes. Section 5 adds stream support:
appends may carry a set of stream ids, in which case the client obtains
backpointers from the sequencer and prepends stream headers to the
payload before running chain replication.

The client owns all retry logic:

- losing an append race (:class:`~repro.errors.WrittenError` at the
  chain head) fetches a fresh offset and tries again;
- a stale epoch (:class:`~repro.errors.SealedError`) refreshes the
  projection from the cluster and retries;
- a dead node (:class:`~repro.errors.NodeDownError`) triggers
  reconfiguration (ejecting the node or replacing the sequencer) and
  retries against the new projection.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.corfu.cluster import CorfuCluster
from repro.corfu.entry import LogEntry, make_header, max_payload_bytes
from repro.corfu.layout import Projection
from repro.corfu.replication import ChainReplicator
from repro.errors import (
    NodeDownError,
    SealedError,
    TooManyStreamsError,
    WrittenError,
)

_MAX_RETRIES = 32


class CorfuClient:
    """One client's handle on the shared log."""

    def __init__(self, cluster: CorfuCluster) -> None:
        self._cluster = cluster
        self._projection: Projection = cluster.projection
        self._chain = ChainReplicator(cluster.storage)
        # Counters for tests / the performance model.
        self.appends = 0
        self.reads = 0
        self.fills = 0

    # -- projection management ----------------------------------------------

    @property
    def projection(self) -> Projection:
        return self._projection

    @property
    def max_payload(self) -> int:
        """Payload capacity of one log entry under this deployment."""
        return max_payload_bytes(
            self._cluster.entry_size, self._cluster.max_streams, self._cluster.k
        )

    @property
    def max_streams(self) -> int:
        """Maximum streams per entry (caps a transaction's write set)."""
        return self._cluster.max_streams

    def refresh_projection(self) -> None:
        """Fetch the latest projection from the auxiliary."""
        self._projection = self._cluster.projection

    def _handle_node_down(self, exc: NodeDownError) -> None:
        """React to a dead node by driving reconfiguration, then refresh."""
        from repro.corfu import reconfig

        # Another client may have reconfigured already; check the latest
        # projection before driving a redundant epoch change.
        self.refresh_projection()
        proj = self._projection
        if exc.node == proj.sequencer:
            reconfig.replace_sequencer(self._cluster)
        elif exc.node in proj.all_nodes():
            reconfig.eject_storage_node(self._cluster, exc.node)
        self.refresh_projection()

    # -- append path ---------------------------------------------------------

    def append(self, payload: bytes, stream_ids: Sequence[int] = ()) -> int:
        """Append *payload* to the log (and to *stream_ids*); return its offset.

        This is the multiappend of section 4.1 when more than one stream
        id is given: the entry occupies a single position in the global
        order but belongs to every listed stream.
        """
        if len(stream_ids) > self._cluster.max_streams:
            raise TooManyStreamsError(len(stream_ids), self._cluster.max_streams)
        limit = max_payload_bytes(
            self._cluster.entry_size, self._cluster.max_streams, self._cluster.k
        )
        if len(payload) > limit:
            raise ValueError(
                f"payload of {len(payload)} bytes exceeds the "
                f"{limit}-byte capacity of a {self._cluster.entry_size}-byte entry"
            )
        for _ in range(_MAX_RETRIES):
            try:
                return self._append_once(payload, stream_ids)
            except WrittenError:
                continue  # lost the race; take a new offset
            except SealedError:
                self.refresh_projection()
            except NodeDownError as exc:
                self._handle_node_down(exc)
        raise WrittenError(-1)

    def _append_once(self, payload: bytes, stream_ids: Sequence[int]) -> int:
        proj = self._projection
        seq = self._cluster.sequencer(proj.sequencer)
        offset, backpointers = seq.increment(stream_ids, epoch=proj.epoch)
        headers = tuple(
            make_header(sid, backpointers[sid], offset, self._cluster.k)
            for sid in stream_ids
        )
        entry = LogEntry(headers=headers, payload=payload)
        raw = entry.encode(offset, self._cluster.k, self._cluster.max_streams)
        rset, address = proj.map_offset(offset)
        self._chain.write(rset, address, raw, proj.epoch)
        self.appends += 1
        return offset

    # -- read path ------------------------------------------------------------

    def read(self, offset: int) -> LogEntry:
        """Read and decode the entry at *offset*.

        Raises :class:`UnwrittenError` for holes and
        :class:`TrimmedError` for reclaimed offsets.
        """
        for _ in range(_MAX_RETRIES):
            proj = self._projection
            rset, address = proj.map_offset(offset)
            try:
                raw = self._chain.read(rset, address, proj.epoch)
            except SealedError:
                self.refresh_projection()
                continue
            except NodeDownError as exc:
                self._handle_node_down(exc)
                continue
            self.reads += 1
            return LogEntry.decode(raw, offset, self._cluster.k)
        raise NodeDownError("unreachable: read retries exhausted")

    def is_written(self, offset: int) -> bool:
        """True if *offset* is owned by some append (even one in flight)."""
        for _ in range(_MAX_RETRIES):
            proj = self._projection
            rset, address = proj.map_offset(offset)
            try:
                return self._chain.is_written(rset, address, proj.epoch)
            except SealedError:
                self.refresh_projection()
            except NodeDownError as exc:
                self._handle_node_down(exc)
        raise NodeDownError("unreachable: is_written retries exhausted")

    # -- check ---------------------------------------------------------------

    def check(self, fast: bool = True) -> int:
        """Return the current tail of the log.

        The fast check is one round-trip to the sequencer
        (sub-millisecond in the paper); the slow check queries every
        storage node for its local tail and inverts the mapping function
        (tens of milliseconds), and works with no sequencer at all.
        """
        if fast:
            for _ in range(_MAX_RETRIES):
                proj = self._projection
                try:
                    tail, _ = self._cluster.sequencer(proj.sequencer).query(
                        (), epoch=proj.epoch
                    )
                    return tail
                except SealedError:
                    self.refresh_projection()
                except NodeDownError as exc:
                    self._handle_node_down(exc)
            raise NodeDownError("unreachable: check retries exhausted")
        return self._slow_check()

    def _slow_check(self) -> int:
        """Query storage-node local tails and invert the mapping."""
        proj = self._projection
        tail = 0
        for set_index, rset in enumerate(proj.replica_sets):
            local_tail = 0
            for node in rset:
                try:
                    local_tail = max(
                        local_tail, self._cluster.storage(node).local_tail()
                    )
                except NodeDownError:
                    continue
            if local_tail > 0:
                tail = max(tail, proj.global_offset(set_index, local_tail - 1) + 1)
        return tail

    def query_streams(
        self, stream_ids: Sequence[int]
    ) -> Tuple[int, Dict[int, Tuple[int, ...]]]:
        """Sequencer query: tail + last-K offsets for each stream."""
        for _ in range(_MAX_RETRIES):
            proj = self._projection
            try:
                return self._cluster.sequencer(proj.sequencer).query(
                    stream_ids, epoch=proj.epoch
                )
            except SealedError:
                self.refresh_projection()
            except NodeDownError as exc:
                self._handle_node_down(exc)
        raise NodeDownError("unreachable: query retries exhausted")

    # -- hole filling and reclamation -----------------------------------------

    def fill(self, offset: int) -> None:
        """Patch the hole at *offset* with a junk value.

        Used after a timeout when a crashed client reserved an offset but
        never wrote it (section 3.2, "Failure Handling"). If the original
        writer races us and wins, that is success too: the hole is gone.
        """
        junk = LogEntry.junk().encode(offset, self._cluster.k, self._cluster.max_streams)
        for _ in range(_MAX_RETRIES):
            proj = self._projection
            rset, address = proj.map_offset(offset)
            try:
                self._chain.write(rset, address, junk, proj.epoch)
                self.fills += 1
                return
            except WrittenError:
                return  # no longer a hole — either filled or completed
            except SealedError:
                self.refresh_projection()
            except NodeDownError as exc:
                self._handle_node_down(exc)
        raise NodeDownError("unreachable: fill retries exhausted")

    def trim(self, offset: int) -> None:
        """Mark one offset as reclaimable."""
        proj = self._projection
        rset, address = proj.map_offset(offset)
        self._chain.trim(rset, address, proj.epoch)

    def trim_prefix(self, offset: int) -> None:
        """Reclaim every offset strictly below *offset* (sequential trim)."""
        proj = self._projection
        n = len(proj.replica_sets)
        for set_index, rset in enumerate(proj.replica_sets):
            if offset > set_index:
                local_count = (offset - set_index + n - 1) // n
            else:
                local_count = 0
            self._chain.trim_prefix(rset, local_count, proj.epoch)
