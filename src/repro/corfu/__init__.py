"""CORFU: a shared log over a cluster of flash storage units.

This subpackage implements the shared-log substrate that Tango runs on
(paper section 2.2), extended with the streaming support of section 5:

- :mod:`repro.corfu.entry` — log entries and per-stream backpointer
  headers (relative and absolute formats).
- :mod:`repro.corfu.storage` — flash storage units exposing a 64-bit
  write-once address space with trim, seal, and crash/recover.
- :mod:`repro.corfu.sequencer` — the tail counter, extended to hand out
  per-stream backpointers.
- :mod:`repro.corfu.layout` — projections: replica sets, the
  deterministic offset-to-page mapping, and epochs.
- :mod:`repro.corfu.replication` — client-driven chain replication.
- :mod:`repro.corfu.client` — the client library: append / read / check
  / trim / fill.
- :mod:`repro.corfu.cluster` — wiring for an in-process deployment, with
  fault injection used by tests and by the reconfiguration machinery.
"""

from repro.corfu.entry import LogEntry, StreamHeader, NO_BACKPOINTER
from repro.corfu.storage import FlashUnit
from repro.corfu.sequencer import Sequencer
from repro.corfu.layout import Projection, ReplicaSet
from repro.corfu.client import CorfuClient
from repro.corfu.cluster import CorfuCluster

__all__ = [
    "LogEntry",
    "StreamHeader",
    "NO_BACKPOINTER",
    "FlashUnit",
    "Sequencer",
    "Projection",
    "ReplicaSet",
    "CorfuClient",
    "CorfuCluster",
]
