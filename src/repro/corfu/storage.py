"""Flash storage units.

Paper section 2.2: "Each individual storage node exposes a 64-bit
write-once address space ... a single CORFU storage node is an SSD with a
custom interface (i.e., a write-once, 64-bit address space instead of a
conventional LBA, where space is freed by explicit trims rather than
overwrites)."

A :class:`FlashUnit` here is the in-memory simulation of one such SSD.
It enforces exactly the semantics the protocols rely on:

- **write-once**: a second write to the same address raises
  :class:`~repro.errors.WrittenError`; this is what lets chain
  replication arbitrate append races without coordination.
- **trim**: explicit reclamation; reading a trimmed address raises
  :class:`~repro.errors.TrimmedError`.
- **seal**: reconfiguration fences an old epoch; requests carrying a
  stale epoch raise :class:`~repro.errors.SealedError`.
- **local tail**: the unit tracks the highest written address, which the
  slow check uses to recover the global tail when the sequencer is down.
- **crash / recover**: a down unit raises
  :class:`~repro.errors.NodeDownError` for every operation. Flash is
  non-volatile, so recovery preserves contents.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from repro.errors import (
    NodeDownError,
    SealedError,
    TrimmedError,
    UnwrittenError,
    WrittenError,
)


class FlashUnit:
    """One storage node: a write-once 64-bit address space over flash."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._pages: Dict[int, bytes] = {}
        self._trimmed_prefix = 0  # all addresses < this are trimmed
        self._trimmed_sparse: set = set()
        self._epoch = 0
        self._down = False
        # Counters exposed for tests and the performance model.
        self.reads = 0
        self.writes = 0
        self.trims = 0
        self._lock = threading.RLock()

    # -- lifecycle ----------------------------------------------------------

    def crash(self) -> None:
        """Take the unit down; subsequent operations raise NodeDownError.

        Taken under the lock so an in-flight data-path operation from
        another thread observes either the live unit or the crash,
        never a page write that lands after the "crash".
        """
        with self._lock:
            self._down = True

    def recover(self) -> None:
        """Bring the unit back up with its (non-volatile) contents intact."""
        with self._lock:
            self._down = False

    @property
    def is_down(self) -> bool:
        with self._lock:
            return self._down

    @property
    def epoch(self) -> int:
        with self._lock:
            return self._epoch

    def _check_up(self) -> None:
        if self._down:
            raise NodeDownError(self.name)

    def _check_epoch(self, epoch: int) -> None:
        if epoch < self._epoch:
            raise SealedError(self._epoch)

    def _is_trimmed(self, address: int) -> bool:
        return address < self._trimmed_prefix or address in self._trimmed_sparse

    # -- data path ----------------------------------------------------------

    def write(self, address: int, data: bytes, epoch: int) -> None:
        """Write-once *data* at *address*.

        Raises :class:`WrittenError` if the address already holds data,
        :class:`TrimmedError` if it was reclaimed, and
        :class:`SealedError` if *epoch* is stale.
        """
        if address < 0:
            raise ValueError(f"negative address {address}")
        with self._lock:
            self._check_up()
            self._check_epoch(epoch)
            if self._is_trimmed(address):
                raise TrimmedError(address)
            if address in self._pages:
                raise WrittenError(address)
            self._pages[address] = data
            self.writes += 1

    def read(self, address: int, epoch: int) -> bytes:
        """Read the data at *address*.

        Raises :class:`UnwrittenError` for holes, :class:`TrimmedError`
        for reclaimed addresses, :class:`SealedError` for stale epochs.
        """
        with self._lock:
            self._check_up()
            self._check_epoch(epoch)
            if self._is_trimmed(address):
                raise TrimmedError(address)
            if address not in self._pages:
                raise UnwrittenError(address)
            self.reads += 1
            return self._pages[address]

    def read_many(self, addresses, epoch: int):
        """Batched read: one RPC returning a per-address outcome map.

        Returns ``{address: (status, data)}`` where *status* is ``"ok"``
        (with the page bytes), ``"unwritten"`` or ``"trimmed"`` (with
        ``None``). Per-address holes and reclaimed pages are *data*, not
        errors — a batch must not fail because one offset is a hole.
        Node-level conditions (down node, stale epoch) still raise for
        the whole call, exactly like :meth:`read`.
        """
        with self._lock:
            self._check_up()
            self._check_epoch(epoch)
            results: Dict[int, Tuple[str, Optional[bytes]]] = {}
            for address in addresses:
                if self._is_trimmed(address):
                    results[address] = ("trimmed", None)
                elif address not in self._pages:
                    results[address] = ("unwritten", None)
                else:
                    self.reads += 1
                    results[address] = ("ok", self._pages[address])
            return results

    def is_written(self, address: int, epoch: int) -> bool:
        """True if *address* holds data (trimmed counts as written)."""
        with self._lock:
            self._check_up()
            self._check_epoch(epoch)
            return address in self._pages or self._is_trimmed(address)

    def trim(self, address: int, epoch: int) -> None:
        """Reclaim a single address (idempotent)."""
        with self._lock:
            self._check_up()
            self._check_epoch(epoch)
            self._pages.pop(address, None)
            if not self._is_trimmed(address):
                self._trimmed_sparse.add(address)
            self.trims += 1
            self._compact_trims()

    def trim_prefix(self, address: int, epoch: int) -> None:
        """Reclaim every address strictly below *address*.

        Sequential trims "result in substantially less wear on the flash
        than random trims" (section 2.2); Tango's directory-driven GC
        issues prefix trims.
        """
        with self._lock:
            self._check_up()
            self._check_epoch(epoch)
            if address <= self._trimmed_prefix:
                return
            for addr in [a for a in self._pages if a < address]:
                del self._pages[addr]
            self._trimmed_prefix = address
            self._trimmed_sparse = {
                a for a in self._trimmed_sparse if a >= address
            }
            self.trims += 1

    def _compact_trims(self) -> None:
        """Fold sparse trims adjacent to the prefix into the prefix."""
        while self._trimmed_prefix in self._trimmed_sparse:
            self._trimmed_sparse.discard(self._trimmed_prefix)
            self._trimmed_prefix += 1

    # -- control path -------------------------------------------------------

    def seal(self, epoch: int) -> int:
        """Fence all requests below *epoch*; returns the local tail.

        Used by reconfiguration: once every unit of the old projection is
        sealed, no in-flight client operation from the old epoch can
        complete, so the new projection can be installed safely.
        """
        with self._lock:
            self._check_up()
            if epoch <= self._epoch:
                raise SealedError(self._epoch)
            self._epoch = epoch
            return self.local_tail()

    def local_tail(self) -> int:
        """Highest written local address + 1 (0 if nothing written)."""
        with self._lock:
            self._check_up()
            high = -1
            if self._pages:
                high = max(self._pages)
            if self._trimmed_prefix > 0:
                high = max(high, self._trimmed_prefix - 1)
            if self._trimmed_sparse:
                high = max(high, max(self._trimmed_sparse))
            return high + 1

    def written_addresses(self):
        """Iterate over currently-held addresses (for rebuild/scan paths)."""
        with self._lock:
            self._check_up()
            return sorted(self._pages)

    def store_status(self):
        """Storage accounting for this unit (admin RPC; read-only).

        The in-memory base unit has no segments; subclasses backed by
        :mod:`repro.store` override this with disk/compaction detail
        using the same keys.
        """
        with self._lock:
            self._check_up()
            return {
                "kind": "memory",
                "name": self.name,
                "epoch": self._epoch,
                "trimmed_prefix": self._trimmed_prefix,
                "pages": len(self._pages),
                "resident_bytes": sum(len(d) for d in self._pages.values()),
                "segments": 0,
                "sealed_segments": 0,
                "disk_bytes": 0,
                "data_bytes": 0,
                "dead_bytes": 0,
                "live_bytes": 0,
                "garbage_ratio": 0.0,
                "compaction": {},
            }

    def compact(self):
        """Reclaim dead storage now (admin RPC; idempotent).

        The in-memory unit frees trimmed pages eagerly, so this is a
        no-op reported as zero work; segmented units override it.
        """
        with self._lock:
            self._check_up()
        return {
            "segments_compacted": 0,
            "segments_written": 0,
            "frames_dropped": 0,
            "bytes_reclaimed": 0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "down" if self._down else f"epoch={self._epoch}"
        return f"<FlashUnit {self.name} {state} pages={len(self._pages)}>"
