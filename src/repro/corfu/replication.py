"""Client-driven chain replication.

Paper section 2.2: "The client then completes the append by directly
issuing writes to the storage nodes in the replica set using a
client-driven variant of Chain Replication [45]. ... the Chain
Replication variant used to write to the storage nodes guarantees that a
single client will 'win' if multiple clients attempt to write to the
same offset."

The rules implemented here:

- **writes** go down the chain head-to-tail. The write-once check at the
  head arbitrates races: whoever writes the head owns the offset and
  must complete the chain; everyone else sees
  :class:`~repro.errors.WrittenError` and gives up. A
  :class:`WrittenError` *past* the head means some reader already
  repaired the suffix on the winner's behalf, so the winner treats it as
  success.
- **reads** go to the tail, because an entry is only guaranteed durable
  (and therefore visible) once the whole chain holds it. A hole at the
  tail with data at the head is an in-flight write; the reader completes
  it (read-repair) and then returns the value.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, Dict, FrozenSet, Optional, Sequence, Tuple

from repro.corfu.layout import ReplicaSet
from repro.corfu.storage import FlashUnit
from repro.errors import ReproError, TrimmedError, UnwrittenError, WrittenError

# Resolves a storage node name to its FlashUnit (or a transport proxy
# for one — the replicator is agnostic; it calls the same methods).
UnitLookup = Callable[[str], FlashUnit]

#: Default bound on entries in flight between head issue and tail ack
#: in :meth:`ChainReplicator.write_pipelined`. Deep enough to keep a
#: 3-hop chain busy, shallow enough that a stalled suffix backpressures
#: the head instead of buffering unbounded payloads.
DEFAULT_PIPELINE_WINDOW = 8


class ChainReplicator:
    """Stateless helper implementing the chain read/write rules."""

    def __init__(self, lookup: UnitLookup) -> None:
        self._lookup = lookup

    def write(
        self,
        rset: ReplicaSet,
        address: int,
        data: bytes,
        epoch: int,
        maybe_mine: bool = False,
    ) -> None:
        """Write *data* at *address* down the chain.

        Raises :class:`WrittenError` if another client won the race at
        the head. Propagates :class:`~repro.errors.NodeDownError` /
        :class:`~repro.errors.SealedError` /
        :class:`~repro.errors.RpcTimeout` so the caller can reconfigure
        or retry.

        With *maybe_mine* (set by a client retrying after an ambiguous
        failure: a lost response or a mid-chain error on an earlier
        attempt of this same write), a head ``WrittenError`` over bytes
        identical to *data* is treated as the client's own earlier
        delivery having landed: the chain is completed and the write
        reports success instead of a lost race. This is what keeps
        at-least-once delivery of chain writes exactly-once in the log.
        """
        for i, node in enumerate(rset):
            unit = self._lookup(node)
            try:
                unit.write(address, data, epoch)
            except WrittenError:
                if i == 0:
                    if maybe_mine and self._holds(unit, address, data, epoch):
                        # Our own earlier (timed-out) delivery won the
                        # offset; keep completing the chain.
                        continue
                    # Lost the race at the head: the offset belongs to
                    # someone else.
                    raise
                # Suffix already repaired by a reader; verify and move on.
                existing = unit.read(address, epoch)
                if existing != data:
                    raise AssertionError(
                        f"chain divergence at {node}:{address}: replica "
                        f"holds different data than the head winner wrote"
                    )

    def write_pipelined(
        self,
        rset: ReplicaSet,
        writes: Sequence[Tuple[int, bytes]],
        epoch: int,
        maybe_mine: FrozenSet[int] = frozenset(),
        window: int = DEFAULT_PIPELINE_WINDOW,
    ) -> Dict[int, Optional[BaseException]]:
        """Stream many writes down the chain, overlapping the hops.

        The synchronous :meth:`write` waits for every hop's ack before
        issuing the next write; here each hop runs in its own stage, so
        while entry *i* is landing on the tail, entry *i+1* is on the
        middle replica and entry *i+2* is at the head. The caller's
        thread drives the head hop — write-once arbitration still
        happens there, and no suffix replica ever sees an entry whose
        head write has not been acked (the chain invariant readers
        depend on). A ``BoundedSemaphore`` caps entries between head
        issue and tail ack at *window*, so a stalled suffix
        backpressures the head instead of buffering without limit.

        *writes* is a sequence of ``(address, data)`` pairs; addresses
        in *maybe_mine* get the retry discipline of :meth:`write`'s
        ``maybe_mine`` flag (a head ``WrittenError`` over identical
        bytes is this client's own earlier delivery).

        Returns a per-address outcome map: ``None`` for a tail-acked
        write, otherwise the exception *instance* that stopped that
        address (``WrittenError`` = lost the head race; node-level
        errors = the chain is incomplete and the caller must re-drive
        that address with ``maybe_mine`` before trusting it). Acks are
        tracked per address, so completions may arrive in any order
        without being misattributed.
        """
        results: Dict[int, Optional[BaseException]] = {}
        hops = list(rset)
        if len(hops) == 1 or len(writes) <= 1:
            # Nothing to overlap: fall back to the synchronous rule.
            for address, data in writes:
                try:
                    self.write(
                        rset, address, data, epoch,
                        maybe_mine=address in maybe_mine,
                    )
                    results[address] = None
                except (ReproError, AssertionError) as exc:
                    results[address] = exc
            return results

        inflight = threading.BoundedSemaphore(max(1, window))
        results_lock = threading.Lock()
        # One queue per suffix hop; stage i consumes queue i-1.
        inboxes = [queue.Queue() for _ in range(len(hops) - 1)]

        def record(address: int, outcome: Optional[BaseException]) -> None:
            with results_lock:
                results[address] = outcome
            inflight.release()

        def suffix_stage(hop: int) -> None:
            unit = self._lookup(hops[hop])
            inbox = inboxes[hop - 1]
            while True:
                item = inbox.get()
                if item is None:  # end-of-batch sentinel, forwarded down
                    if hop < len(hops) - 1:
                        inboxes[hop].put(None)
                    return
                address, data = item
                try:
                    try:
                        unit.write(address, data, epoch)
                    except WrittenError:
                        # Suffix already repaired by a reader; verify.
                        if unit.read(address, epoch) != data:
                            raise AssertionError(
                                f"chain divergence at {hops[hop]}:{address}: "
                                f"replica holds different data than the "
                                f"head winner wrote"
                            ) from None
                except (ReproError, AssertionError) as exc:
                    # Chain incomplete for this address: stop forwarding
                    # it and report; the caller re-drives the whole
                    # chain for it (maybe_mine absorbs our partial
                    # progress), so exactly-once survives.
                    record(address, exc)
                    continue
                if hop < len(hops) - 1:
                    inboxes[hop].put((address, data))
                else:
                    record(address, None)  # tail ack: durable

        stages = [
            threading.Thread(
                target=suffix_stage, args=(hop,),
                name=f"chain-hop-{hops[hop]}", daemon=True,
            )
            for hop in range(1, len(hops))
        ]
        for stage in stages:
            stage.start()
        head = self._lookup(hops[0])
        try:
            for address, data in writes:
                inflight.acquire()
                try:
                    try:
                        head.write(address, data, epoch)
                    except WrittenError as exc:
                        if not (
                            address in maybe_mine
                            and self._holds(head, address, data, epoch)
                        ):
                            # Lost the race at the head: the offset
                            # belongs to someone else.
                            record(address, exc)
                            continue
                        # Our own earlier (timed-out) delivery won the
                        # offset; keep streaming the suffix.
                except (ReproError, AssertionError) as exc:
                    record(address, exc)
                    continue
                inboxes[0].put((address, data))
        finally:
            inboxes[0].put(None)
            for stage in stages:
                stage.join()
        return results

    @staticmethod
    def _holds(unit: FlashUnit, address: int, data: bytes, epoch: int) -> bool:
        """True if *unit* already holds exactly *data* at *address*."""
        try:
            return unit.read(address, epoch) == data
        except (UnwrittenError, TrimmedError):
            return False

    def read(self, rset: ReplicaSet, address: int, epoch: int) -> bytes:
        """Read *address* from the tail, repairing in-flight writes.

        Raises :class:`UnwrittenError` if the offset is a genuine hole
        (no replica holds data), which the caller may then ``fill``,
        and :class:`TrimmedError` if the offset was reclaimed —
        including when a trim races an in-flight write, leaving the
        tail unwritten and the head (or a repair target) trimmed.
        """
        tail = self._lookup(rset.tail)
        try:
            return tail.read(address, epoch)
        except UnwrittenError:
            if len(rset) == 1:
                raise
        # Tail is unwritten. Check the head: if it holds data, the write
        # is in flight and we complete it; otherwise this is a hole. A
        # TrimmedError anywhere past this point means GC raced the
        # in-flight write; surface it as the normal trimmed outcome
        # (the offset's data was reclaimable anyway), not as a raw
        # mid-chain error — read_many makes the same call.
        head = self._lookup(rset.head)
        try:
            data = head.read(address, epoch)  # raises UnwrittenError on a hole
            self._repair(rset, address, data, epoch)
        except TrimmedError:
            raise TrimmedError(address) from None
        return data

    def read_many(self, rset: ReplicaSet, addresses, epoch: int):
        """Batched tail read: one RPC per replica node, not per address.

        Returns ``{address: (status, data)}`` with the same per-address
        outcome vocabulary as :meth:`FlashUnit.read_many` (``"ok"`` /
        ``"unwritten"`` / ``"trimmed"``). Addresses unwritten at the tail
        are re-checked at the head in a second batched RPC: head-written
        pages are in-flight writes, which are completed (read-repair)
        and returned as ``"ok"``, preserving the read-after-complete
        rule of the single-address path.
        """
        tail = self._lookup(rset.tail)
        results = dict(tail.read_many(addresses, epoch))
        if len(rset) == 1:
            return results
        pending = sorted(
            addr for addr, (status, _) in results.items() if status == "unwritten"
        )
        if not pending:
            return results
        head = self._lookup(rset.head)
        head_results = head.read_many(pending, epoch)
        for addr in pending:
            status, data = head_results[addr]
            if status == "ok":
                # In-flight write: complete the chain on the writer's
                # behalf, then the value is durable and visible.
                try:
                    self._repair(rset, addr, data, epoch)
                except TrimmedError:
                    # A trim raced the repair mid-chain; same outcome
                    # as finding the head already trimmed.
                    results[addr] = ("trimmed", None)
                    continue
                results[addr] = ("ok", data)
            elif status == "trimmed":
                results[addr] = ("trimmed", None)
            # "unwritten" stays a genuine hole; "trimmed" at the head
            # with an unwritten tail means GC raced an in-flight write —
            # the normal trimmed outcome (the data was reclaimable
            # anyway), never a raw mid-chain error.
        return results

    def is_written(self, rset: ReplicaSet, address: int, epoch: int) -> bool:
        """True if the offset is owned (head written), even if in flight."""
        head = self._lookup(rset.head)
        return head.is_written(address, epoch)

    def trim(self, rset: ReplicaSet, address: int, epoch: int) -> None:
        """Trim one address on every replica."""
        for node in rset:
            self._lookup(node).trim(address, epoch)

    def trim_prefix(self, rset: ReplicaSet, address: int, epoch: int) -> None:
        """Trim all local addresses below *address* on every replica."""
        for node in rset:
            self._lookup(node).trim_prefix(address, epoch)

    def _repair(self, rset: ReplicaSet, address: int, data: bytes, epoch: int) -> None:
        """Copy head data down the rest of the chain (read-repair)."""
        for node in rset.nodes[1:]:
            unit = self._lookup(node)
            try:
                unit.write(address, data, epoch)
            except WrittenError:
                # Someone else repaired concurrently; both copied the
                # head value, so the chain is consistent either way.
                pass
