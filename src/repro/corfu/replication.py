"""Client-driven chain replication.

Paper section 2.2: "The client then completes the append by directly
issuing writes to the storage nodes in the replica set using a
client-driven variant of Chain Replication [45]. ... the Chain
Replication variant used to write to the storage nodes guarantees that a
single client will 'win' if multiple clients attempt to write to the
same offset."

The rules implemented here:

- **writes** go down the chain head-to-tail. The write-once check at the
  head arbitrates races: whoever writes the head owns the offset and
  must complete the chain; everyone else sees
  :class:`~repro.errors.WrittenError` and gives up. A
  :class:`WrittenError` *past* the head means some reader already
  repaired the suffix on the winner's behalf, so the winner treats it as
  success.
- **reads** go to the tail, because an entry is only guaranteed durable
  (and therefore visible) once the whole chain holds it. A hole at the
  tail with data at the head is an in-flight write; the reader completes
  it (read-repair) and then returns the value.
"""

from __future__ import annotations

from typing import Callable

from repro.corfu.layout import ReplicaSet
from repro.corfu.storage import FlashUnit
from repro.errors import TrimmedError, UnwrittenError, WrittenError

# Resolves a storage node name to its FlashUnit (or a transport proxy
# for one — the replicator is agnostic; it calls the same methods).
UnitLookup = Callable[[str], FlashUnit]


class ChainReplicator:
    """Stateless helper implementing the chain read/write rules."""

    def __init__(self, lookup: UnitLookup) -> None:
        self._lookup = lookup

    def write(
        self,
        rset: ReplicaSet,
        address: int,
        data: bytes,
        epoch: int,
        maybe_mine: bool = False,
    ) -> None:
        """Write *data* at *address* down the chain.

        Raises :class:`WrittenError` if another client won the race at
        the head. Propagates :class:`~repro.errors.NodeDownError` /
        :class:`~repro.errors.SealedError` /
        :class:`~repro.errors.RpcTimeout` so the caller can reconfigure
        or retry.

        With *maybe_mine* (set by a client retrying after an ambiguous
        failure: a lost response or a mid-chain error on an earlier
        attempt of this same write), a head ``WrittenError`` over bytes
        identical to *data* is treated as the client's own earlier
        delivery having landed: the chain is completed and the write
        reports success instead of a lost race. This is what keeps
        at-least-once delivery of chain writes exactly-once in the log.
        """
        for i, node in enumerate(rset):
            unit = self._lookup(node)
            try:
                unit.write(address, data, epoch)
            except WrittenError:
                if i == 0:
                    if maybe_mine and self._holds(unit, address, data, epoch):
                        # Our own earlier (timed-out) delivery won the
                        # offset; keep completing the chain.
                        continue
                    # Lost the race at the head: the offset belongs to
                    # someone else.
                    raise
                # Suffix already repaired by a reader; verify and move on.
                existing = unit.read(address, epoch)
                if existing != data:
                    raise AssertionError(
                        f"chain divergence at {node}:{address}: replica "
                        f"holds different data than the head winner wrote"
                    )

    @staticmethod
    def _holds(unit: FlashUnit, address: int, data: bytes, epoch: int) -> bool:
        """True if *unit* already holds exactly *data* at *address*."""
        try:
            return unit.read(address, epoch) == data
        except (UnwrittenError, TrimmedError):
            return False

    def read(self, rset: ReplicaSet, address: int, epoch: int) -> bytes:
        """Read *address* from the tail, repairing in-flight writes.

        Raises :class:`UnwrittenError` if the offset is a genuine hole
        (no replica holds data), which the caller may then ``fill``.
        """
        tail = self._lookup(rset.tail)
        try:
            return tail.read(address, epoch)
        except UnwrittenError:
            if len(rset) == 1:
                raise
        # Tail is unwritten. Check the head: if it holds data, the write
        # is in flight and we complete it; otherwise this is a hole.
        head = self._lookup(rset.head)
        data = head.read(address, epoch)  # raises UnwrittenError on a hole
        self._repair(rset, address, data, epoch)
        return data

    def read_many(self, rset: ReplicaSet, addresses, epoch: int):
        """Batched tail read: one RPC per replica node, not per address.

        Returns ``{address: (status, data)}`` with the same per-address
        outcome vocabulary as :meth:`FlashUnit.read_many` (``"ok"`` /
        ``"unwritten"`` / ``"trimmed"``). Addresses unwritten at the tail
        are re-checked at the head in a second batched RPC: head-written
        pages are in-flight writes, which are completed (read-repair)
        and returned as ``"ok"``, preserving the read-after-complete
        rule of the single-address path.
        """
        tail = self._lookup(rset.tail)
        results = dict(tail.read_many(addresses, epoch))
        if len(rset) == 1:
            return results
        pending = sorted(
            addr for addr, (status, _) in results.items() if status == "unwritten"
        )
        if not pending:
            return results
        head = self._lookup(rset.head)
        head_results = head.read_many(pending, epoch)
        for addr in pending:
            status, data = head_results[addr]
            if status == "ok":
                # In-flight write: complete the chain on the writer's
                # behalf, then the value is durable and visible.
                self._repair(rset, addr, data, epoch)
                results[addr] = ("ok", data)
            # "unwritten" stays a genuine hole; "trimmed" at the head
            # with an unwritten tail means GC raced us — report the
            # hole (a trim implies the data was reclaimable anyway).
        return results

    def is_written(self, rset: ReplicaSet, address: int, epoch: int) -> bool:
        """True if the offset is owned (head written), even if in flight."""
        head = self._lookup(rset.head)
        return head.is_written(address, epoch)

    def trim(self, rset: ReplicaSet, address: int, epoch: int) -> None:
        """Trim one address on every replica."""
        for node in rset:
            self._lookup(node).trim(address, epoch)

    def trim_prefix(self, rset: ReplicaSet, address: int, epoch: int) -> None:
        """Trim all local addresses below *address* on every replica."""
        for node in rset:
            self._lookup(node).trim_prefix(address, epoch)

    def _repair(self, rset: ReplicaSet, address: int, data: bytes, epoch: int) -> None:
        """Copy head data down the rest of the chain (read-repair)."""
        for node in rset.nodes[1:]:
            unit = self._lookup(node)
            try:
                unit.write(address, data, epoch)
            except WrittenError:
                # Someone else repaired concurrently; both copied the
                # head value, so the chain is consistent either way.
                pass
