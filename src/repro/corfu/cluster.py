"""In-process wiring for a CORFU deployment.

A :class:`CorfuCluster` owns the storage units and sequencers named by
the current projection and plays the role of the auxiliary that stores
projections (the paper's CORFU keeps projections in a separate
Paxos-backed auxiliary; for an in-process deployment a single
authoritative copy with an epoch check gives the same semantics).

The cluster also exposes the fault-injection surface used by the tests
and benchmarks: crashing/recovering storage units and sequencers.
Clients never touch each other — they share only the cluster, exactly as
Tango runtimes share only the log.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.corfu.entry import DEFAULT_ENTRY_SIZE, DEFAULT_K
from repro.corfu.layout import Projection, build_projection
from repro.corfu.sequencer import Sequencer
from repro.corfu.storage import FlashUnit
from repro.errors import NodeDownError
from repro.net import LoopbackTransport, Transport


class CorfuCluster:
    """A complete in-process CORFU deployment.

    Args:
        num_sets: number of disjoint replica sets (chains).
        replication_factor: nodes per chain. The paper's default
            deployment is ``num_sets=9, replication_factor=2``.
        k: backpointer redundancy per stream header.
        entry_size: fixed log entry size in bytes (deployment constant).
        max_streams: maximum streams per entry, i.e. the cap on how many
            objects one transaction may write (section 4.1).
        seq_shards: number of sequencer shards. The default 1 is the
            paper's single networked counter; N > 1 stripes the offset
            space over N independently-locked shards (stream ``sid``
            belongs to shard ``sid % N``).
        projection: custom initial projection (overrides num_sets /
            replication_factor / seq_shards).
        transport: the client↔node message boundary. Defaults to a
            :class:`~repro.net.LoopbackTransport` (direct calls); pass
            a :class:`~repro.net.FaultyTransport` to inject network
            faults.
    """

    def __init__(
        self,
        num_sets: int = 9,
        replication_factor: int = 2,
        k: int = DEFAULT_K,
        entry_size: int = DEFAULT_ENTRY_SIZE,
        max_streams: int = 16,
        seq_shards: int = 1,
        projection: Optional[Projection] = None,
        transport: Optional[Transport] = None,
    ) -> None:
        self.k = k
        self.entry_size = entry_size
        self.max_streams = max_streams
        self.transport = transport if transport is not None else LoopbackTransport()
        if projection is None:
            projection = build_projection(
                num_sets, replication_factor, seq_shards=seq_shards
            )
        self._projection = projection
        self._lock = threading.Lock()
        self._client_ids = iter(range(1, 1 << 31))
        self._units: Dict[str, FlashUnit] = {
            name: FlashUnit(name) for name in projection.all_nodes()
        }
        shards = projection.sequencer_shards
        self._sequencers: Dict[str, Sequencer] = {
            name: Sequencer(
                name, k=k, shard_index=i, num_shards=len(shards)
            )
            for i, name in enumerate(shards)
        }

    # -- membership ---------------------------------------------------------

    @property
    def projection(self) -> Projection:
        """The current (latest-epoch) projection."""
        with self._lock:
            return self._projection

    def install_projection(self, projection: Projection) -> None:
        """Atomically install a higher-epoch projection."""
        with self._lock:
            if projection.epoch <= self._projection.epoch:
                raise ValueError(
                    f"projection epoch {projection.epoch} is not newer than "
                    f"current epoch {self._projection.epoch}"
                )
            self._projection = projection

    def storage(self, name: str) -> FlashUnit:
        """Look up a storage unit by name."""
        try:
            return self._units[name]
        except KeyError:
            raise NodeDownError(name) from None

    def sequencer(self, name: Optional[str] = None) -> Sequencer:
        """Look up a sequencer (defaults to the current projection's)."""
        if name is None:
            name = self.projection.sequencer
        # Lazy creation happens under the lock: two clients racing to
        # reach a fresh sequencer after failover must agree on one
        # instance, or grants from the loser's copy duplicate offsets.
        # A name appearing in the current projection's shard tuple gets
        # that shard's stripe geometry; anything else (a replacement
        # shard mid-failover) must be pre-created via
        # :meth:`create_sequencer` with explicit striping.
        with self._lock:
            seq = self._sequencers.get(name)
            if seq is None:
                shards = self._projection.sequencer_shards
                if name in shards:
                    seq = Sequencer(
                        name,
                        k=self.k,
                        shard_index=shards.index(name),
                        num_shards=len(shards),
                    )
                else:
                    seq = Sequencer(name, k=self.k)
                self._sequencers[name] = seq
        return seq

    def create_sequencer(
        self, name: str, shard_index: int = 0, num_shards: int = 1
    ) -> Sequencer:
        """Create (or return) a sequencer with explicit stripe geometry.

        Reconfiguration uses this to stand up a replacement shard
        *before* the projection naming it is installed; racing failovers
        of the same shard agree on one instance (first creation wins,
        and replacement names are unique per epoch).
        """
        with self._lock:
            seq = self._sequencers.get(name)
            if seq is None:
                seq = Sequencer(
                    name,
                    k=self.k,
                    shard_index=shard_index,
                    num_shards=num_shards,
                )
                self._sequencers[name] = seq
        return seq

    def client(self, name: Optional[str] = None) -> "CorfuClient":
        """Create a new client library instance bound to this cluster.

        Each client is a distinct transport endpoint (so partitions can
        isolate individual clients); *name* overrides the generated
        endpoint name.
        """
        from repro.corfu.client import CorfuClient

        return CorfuClient(self, name=name)

    def next_client_name(self) -> str:
        """Mint a unique transport endpoint name for a new client."""
        with self._lock:
            return f"client-{next(self._client_ids)}"

    # -- fault injection ----------------------------------------------------

    def crash_storage(self, name: str) -> None:
        """Crash one storage unit (contents survive, being flash)."""
        self._units[name].crash()

    def recover_storage(self, name: str) -> None:
        """Recover a previously crashed storage unit."""
        self._units[name].recover()

    def crash_sequencer(self, name: Optional[str] = None) -> None:
        """Crash a sequencer, losing its soft state."""
        if name is None:
            name = self.projection.sequencer
        with self._lock:
            seq = self._sequencers[name]
        # Crash outside the membership lock: Sequencer.crash takes the
        # sequencer's own lock, and the cluster lock stays a leaf.
        seq.crash()

    # -- introspection ------------------------------------------------------

    def total_storage_reads(self) -> int:
        return sum(u.reads for u in self._units.values())

    def total_storage_writes(self) -> int:
        return sum(u.writes for u in self._units.values())

    def store_status(self):
        """Per-unit storage accounting, aggregated in process.

        Reads the units directly (like :meth:`total_storage_reads`), so
        callers holding client-side locks can use it without issuing
        RPCs; remote deployments use
        :meth:`~repro.corfu.client.CorfuClient.store_status` instead.
        """
        nodes = {
            name: unit.store_status()
            for name, unit in sorted(self._units.items())
            if not unit.is_down
        }
        return {
            "nodes": nodes,
            "segments": sum(n["segments"] for n in nodes.values()),
            "disk_bytes": sum(n["disk_bytes"] for n in nodes.values()),
            "resident_bytes": sum(
                n["resident_bytes"] for n in nodes.values()
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        p = self.projection
        return (
            f"<CorfuCluster epoch={p.epoch} sets={len(p.replica_sets)} "
            f"sequencer={p.sequencer}>"
        )
