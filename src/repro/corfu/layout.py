"""Projections: the mapping from log offsets to storage pages.

Paper section 2.2: "CORFU organizes a cluster of storage nodes into
multiple, disjoint replica sets; for example, a 12-node cluster might
consist of 4 replica sets of size 3 ... It then maps this offset to a
local offset on one of the replica sets using a simple deterministic
mapping over the membership of the cluster. For example, offset 0 might
be mapped to A:0 (i.e., page 0 on set A ...), offset 1 to B:0, and so on
until the function wraps back to A:1."

Section 5 makes the sequencer "a first-class member of the 'projection'
or membership view", so a projection names the sequencer too, and
replacing a failed sequencer is an ordinary projection change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class ReplicaSet:
    """An ordered chain of storage node names (head first, tail last)."""

    nodes: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("replica set must contain at least one node")
        if len(set(self.nodes)) != len(self.nodes):
            raise ValueError(f"duplicate nodes in replica set: {self.nodes}")

    @property
    def head(self) -> str:
        return self.nodes[0]

    @property
    def tail(self) -> str:
        return self.nodes[-1]

    def without(self, node: str) -> "ReplicaSet":
        """A copy of this set with *node* ejected."""
        remaining = tuple(n for n in self.nodes if n != node)
        return ReplicaSet(remaining)

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)


@dataclass(frozen=True)
class Projection:
    """One epoch's view of the cluster membership.

    Attributes:
        epoch: monotonically increasing configuration number.
        replica_sets: disjoint chains; offset *o* maps to set
            ``o % len(replica_sets)`` at local address
            ``o // len(replica_sets)``.
        sequencer: name of the sequencer node for this epoch (or the
            group label when the sequencer is sharded).
        seq_shards: shard node names of a sharded sequencer group, in
            shard order — shard ``i`` owns streams ``sid % N == i`` and
            offsets ``≡ i (mod N)``. Empty means the classic single
            sequencer named by ``sequencer``. Changing the shard
            *count* changes the offset striping, so it is always an
            epoch change (a new projection).
    """

    epoch: int
    replica_sets: Tuple[ReplicaSet, ...]
    sequencer: str
    seq_shards: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.replica_sets:
            raise ValueError("projection needs at least one replica set")
        seen = set()
        for rset in self.replica_sets:
            for node in rset:
                if node in seen:
                    raise ValueError(f"node {node} appears in two replica sets")
                seen.add(node)
        if len(set(self.seq_shards)) != len(self.seq_shards):
            raise ValueError(
                f"duplicate sequencer shard names: {self.seq_shards}"
            )

    def map_offset(self, offset: int) -> Tuple[ReplicaSet, int]:
        """Deterministic mapping: global offset -> (replica set, local address)."""
        if offset < 0:
            raise ValueError(f"negative offset {offset}")
        n = len(self.replica_sets)
        return self.replica_sets[offset % n], offset // n

    def global_offset(self, set_index: int, local_address: int) -> int:
        """Inverse mapping used by the slow check."""
        return local_address * len(self.replica_sets) + set_index

    def all_nodes(self) -> List[str]:
        """Every storage node named by this projection."""
        return [node for rset in self.replica_sets for node in rset]

    # -- sequencer sharding -------------------------------------------------

    @property
    def sequencer_shards(self) -> Tuple[str, ...]:
        """Shard node names, in shard order; ``(sequencer,)`` if unsharded."""
        return self.seq_shards or (self.sequencer,)

    @property
    def num_seq_shards(self) -> int:
        return len(self.sequencer_shards)

    def shard_index_for_stream(self, stream_id: int) -> int:
        """Index of the shard owning *stream_id* (``sid % N``)."""
        return stream_id % self.num_seq_shards

    def shard_for_stream(self, stream_id: int) -> str:
        """Node name of the shard owning *stream_id*."""
        return self.sequencer_shards[stream_id % self.num_seq_shards]

    def with_sequencer(self, sequencer: str) -> "Projection":
        """Next-epoch projection with a replacement (single) sequencer."""
        if self.seq_shards:
            raise ValueError(
                "sequencer is sharded; replace one shard with "
                "with_seq_shard() or change the group with with_seq_shards()"
            )
        return Projection(self.epoch + 1, self.replica_sets, sequencer)

    def with_seq_shard(self, index: int, name: str) -> "Projection":
        """Next-epoch projection with one sequencer shard replaced.

        Only the named shard changes; the stripe geometry (shard count
        and the other shards' identities — and therefore their live
        soft state) is untouched, which is what lets one crashed shard
        fail over without halting the rest of the group.
        """
        shards = self.sequencer_shards
        if not 0 <= index < len(shards):
            raise ValueError(
                f"shard index {index} out of range for {len(shards)} shards"
            )
        if not self.seq_shards:
            return self.with_sequencer(name)
        replaced = shards[:index] + (name,) + shards[index + 1:]
        return Projection(
            self.epoch + 1, self.replica_sets, self.sequencer, replaced
        )

    def with_seq_shards(self, shard_names: Tuple[str, ...]) -> "Projection":
        """Next-epoch projection with a new sequencer shard group.

        Changing the shard count restripes the offset space, so it must
        go through an epoch change like any membership change; callers
        are responsible for recovering the new shards' soft state.
        """
        return Projection(
            self.epoch + 1, self.replica_sets, self.sequencer, tuple(shard_names)
        )

    def with_node_ejected(self, node: str) -> "Projection":
        """Next-epoch projection with a failed storage node removed.

        The chain that contained *node* simply shrinks; CORFU tolerates
        f failures per f+1-way replicated chain.
        """
        new_sets = []
        found = False
        for rset in self.replica_sets:
            if node in rset.nodes:
                found = True
                shrunk = rset.without(node)
                if not shrunk.nodes:
                    raise ValueError(
                        f"ejecting {node} would empty replica set {rset.nodes}"
                    )
                new_sets.append(shrunk)
            else:
                new_sets.append(rset)
        if not found:
            raise ValueError(f"node {node} not in projection epoch {self.epoch}")
        return Projection(
            self.epoch + 1, tuple(new_sets), self.sequencer, self.seq_shards
        )


def build_projection(
    num_sets: int,
    replication_factor: int,
    sequencer: str = "seq-0",
    epoch: int = 0,
    node_prefix: str = "flash",
    seq_shards: int = 1,
) -> Projection:
    """Construct the standard NxR layout used throughout the evaluation.

    The paper's default deployment is 18 nodes in a "9X2 configuration
    (i.e., 9 sets of 2 replicas each)":
    ``build_projection(9, 2)``.

    With ``seq_shards > 1`` the sequencer is a sharded group labelled
    *sequencer*, its shards named ``{sequencer}.0 .. {sequencer}.N-1``.
    """
    sets = []
    for i in range(num_sets):
        nodes = tuple(
            f"{node_prefix}-{i}-{j}" for j in range(replication_factor)
        )
        sets.append(ReplicaSet(nodes))
    if seq_shards < 1:
        raise ValueError(f"seq_shards must be >= 1, got {seq_shards}")
    shards: Tuple[str, ...] = ()
    if seq_shards > 1:
        shards = tuple(f"{sequencer}.{i}" for i in range(seq_shards))
    return Projection(epoch, tuple(sets), sequencer, shards)
