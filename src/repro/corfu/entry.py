"""Log entries and stream headers.

Paper section 5: "each entry in the shared log now has a small stream
header. This header includes a stream ID as well as backpointers to the
last K entries in the shared log belonging to the same stream."

Two header formats exist:

- **relative** — K backpointers stored as 2-byte deltas from the current
  offset. A delta overflows if the previous entry of the stream is more
  than 64K entries back.
- **absolute** — if all K deltas overflow, the header stores K/4
  backpointers as 8-byte absolute offsets instead.

"In practice, we use a 31-bit stream ID and use the remaining bit to
store the format indicator. If K = 4, which is the minimum required for
this scheme, the header uses 12 bytes." An entry carries a fixed number
of such headers, equal to the maximum number of streams a single
multiappend (and therefore a single transaction's write set) may touch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.errors import TooManyStreamsError
from repro.util.encoding import (
    decode_bytes,
    encode_bytes,
    pack_u16,
    pack_u32,
    pack_u64,
    unpack_u16,
    unpack_u32,
    unpack_u64,
)

# Sentinel meaning "no previous entry for this stream".
NO_BACKPOINTER = -1

# Relative deltas are 16-bit; 0 is reserved as the "none" sentinel since a
# delta of 0 would point an entry at itself.
_MAX_RELATIVE_DELTA = 0xFFFF
_ABSOLUTE_NONE = 0xFFFFFFFFFFFFFFFF

MAX_STREAM_ID = (1 << 31) - 1

#: Default backpointer redundancy (paper: "If K = 4, which is the minimum
#: required for this scheme").
DEFAULT_K = 4

#: Default 4KB log entries (paper section 6).
DEFAULT_ENTRY_SIZE = 4096


@dataclass(frozen=True)
class StreamHeader:
    """One stream's header on a log entry.

    ``backpointers`` always has logical length K (relative format) or
    K/4 (absolute format), padded with :data:`NO_BACKPOINTER`. Pointers
    are absolute log offsets in both cases; the encoding layer converts
    to deltas for the relative format.
    """

    stream_id: int
    backpointers: Tuple[int, ...]
    is_absolute: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.stream_id <= MAX_STREAM_ID:
            raise ValueError(f"stream id {self.stream_id} out of 31-bit range")

    def previous_offset(self) -> int:
        """Offset of the stream's most recent prior entry, or NO_BACKPOINTER."""
        if not self.backpointers:
            return NO_BACKPOINTER
        return self.backpointers[0]

    def encode(self, buf: bytearray, own_offset: int, k: int) -> None:
        """Serialize this header into *buf* for an entry at *own_offset*."""
        flag = 1 if self.is_absolute else 0
        pack_u32(buf, (self.stream_id << 1) | flag)
        if self.is_absolute:
            count = max(1, k // 4)
            ptrs = list(self.backpointers[:count])
            ptrs += [NO_BACKPOINTER] * (count - len(ptrs))
            for ptr in ptrs:
                pack_u64(buf, _ABSOLUTE_NONE if ptr == NO_BACKPOINTER else ptr)
        else:
            ptrs = list(self.backpointers[:k])
            ptrs += [NO_BACKPOINTER] * (k - len(ptrs))
            for ptr in ptrs:
                if ptr == NO_BACKPOINTER:
                    pack_u16(buf, 0)
                    continue
                delta = own_offset - ptr
                if not 0 < delta <= _MAX_RELATIVE_DELTA:
                    raise ValueError(
                        f"relative delta {delta} out of range at offset "
                        f"{own_offset}; caller should have used the "
                        f"absolute format"
                    )
                pack_u16(buf, delta)

    @staticmethod
    def decode(buf: bytes, off: int, own_offset: int, k: int) -> Tuple["StreamHeader", int]:
        """Deserialize a header encoded at *off* for an entry at *own_offset*."""
        word, off = unpack_u32(buf, off)
        stream_id = word >> 1
        is_absolute = bool(word & 1)
        ptrs = []
        if is_absolute:
            for _ in range(max(1, k // 4)):
                raw, off = unpack_u64(buf, off)
                ptrs.append(NO_BACKPOINTER if raw == _ABSOLUTE_NONE else raw)
        else:
            for _ in range(k):
                delta, off = unpack_u16(buf, off)
                ptrs.append(NO_BACKPOINTER if delta == 0 else own_offset - delta)
        return StreamHeader(stream_id, tuple(ptrs), is_absolute), off


def make_header(stream_id: int, last_offsets: Sequence[int], own_offset: int, k: int) -> StreamHeader:
    """Build the header for an entry at *own_offset*, choosing the format.

    *last_offsets* is the sequencer's record of the last K offsets issued
    for this stream, newest first. The relative format is used unless
    **all** K deltas overflow 16 bits (paper section 5); in that case the
    header falls back to K/4 absolute pointers.
    """
    ptrs = [p for p in last_offsets[:k] if p != NO_BACKPOINTER]
    if not ptrs:
        return StreamHeader(stream_id, (NO_BACKPOINTER,) * k, is_absolute=False)
    all_overflow = all(own_offset - p > _MAX_RELATIVE_DELTA for p in ptrs)
    if all_overflow:
        count = max(1, k // 4)
        return StreamHeader(stream_id, tuple(ptrs[:count]), is_absolute=True)
    # Relative format: individually-overflowing pointers degrade to "none".
    rel = [
        p if own_offset - p <= _MAX_RELATIVE_DELTA else NO_BACKPOINTER
        for p in last_offsets[:k]
    ]
    rel += [NO_BACKPOINTER] * (k - len(rel))
    return StreamHeader(stream_id, tuple(rel), is_absolute=False)


@dataclass(frozen=True)
class LogEntry:
    """A single entry in the shared log.

    ``headers`` carries one :class:`StreamHeader` per stream the entry
    belongs to (at most ``max_streams`` of them, a deployment-time
    constant). ``payload`` is opaque to CORFU; the Tango runtime packs
    update/commit records into it. ``is_junk`` marks entries written by
    the ``fill`` primitive to patch holes left by crashed clients; junk
    entries carry no headers and no payload.
    """

    headers: Tuple[StreamHeader, ...] = field(default_factory=tuple)
    payload: bytes = b""
    is_junk: bool = False

    def stream_ids(self) -> Tuple[int, ...]:
        """Ids of all streams this entry belongs to."""
        return tuple(h.stream_id for h in self.headers)

    def header_for(self, stream_id: int) -> Optional[StreamHeader]:
        """Return this entry's header for *stream_id*, or None."""
        for header in self.headers:
            if header.stream_id == stream_id:
                return header
        return None

    @staticmethod
    def junk() -> "LogEntry":
        """The junk entry used to fill holes."""
        return LogEntry(headers=(), payload=b"", is_junk=True)

    def encode(self, own_offset: int, k: int = DEFAULT_K, max_streams: int = 16) -> bytes:
        """Serialize to the on-flash format.

        Layout: ``[junk:u16][nheaders:u16][headers...][payload]``.
        """
        if len(self.headers) > max_streams:
            raise TooManyStreamsError(len(self.headers), max_streams)
        buf = bytearray()
        pack_u16(buf, 1 if self.is_junk else 0)
        pack_u16(buf, len(self.headers))
        for header in self.headers:
            header.encode(buf, own_offset, k)
        encode_bytes(buf, self.payload)
        return bytes(buf)

    @staticmethod
    def decode(raw: bytes, own_offset: int, k: int = DEFAULT_K) -> "LogEntry":
        """Deserialize an entry previously produced by :meth:`encode`."""
        junk_flag, off = unpack_u16(raw, 0)
        nheaders, off = unpack_u16(raw, off)
        headers = []
        for _ in range(nheaders):
            header, off = StreamHeader.decode(raw, off, own_offset, k)
            headers.append(header)
        payload, off = decode_bytes(raw, off)
        return LogEntry(tuple(headers), payload, is_junk=bool(junk_flag))


# -- vector-grant markers ----------------------------------------------------

#: Magic prefix of a vector-grant marker entry. A cross-shard
#: multiappend reserves one offset per touched sequencer shard but
#: writes its data at the highest reservation only; each burned
#: reservation receives a headerless marker entry naming the final
#: offset and the streams of that reservation's shard, so a per-shard
#: recovery scan (which only reads its own stripe) still learns about
#: cross-shard entries living in other stripes. Markers carry no
#: stream headers — normal sync never sees them.
SEQ_VECTOR_MAGIC = b"SEQVEC1"


def encode_vector_marker(final_offset: int, stream_ids: Sequence[int]) -> bytes:
    """Payload of the marker written at a burned vector-grant reservation."""
    import json

    body = {"offset": final_offset, "streams": sorted(stream_ids)}
    return SEQ_VECTOR_MAGIC + json.dumps(
        body, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")


def decode_vector_marker(payload: bytes) -> Optional[Tuple[int, Tuple[int, ...]]]:
    """Invert :func:`encode_vector_marker`; None if not a marker."""
    import json

    if not payload.startswith(SEQ_VECTOR_MAGIC):
        return None
    try:
        body = json.loads(payload[len(SEQ_VECTOR_MAGIC):])
        return int(body["offset"]), tuple(int(s) for s in body["streams"])
    except (ValueError, KeyError, TypeError):
        return None


def header_bytes(k: int) -> int:
    """On-flash size of one stream header with redundancy *k*.

    With the default K=4 this is 12 bytes, matching the paper ("each
    extra stream requiring 12 bytes of space in a 4KB log entry").
    """
    return 4 + 2 * k


def max_payload_bytes(entry_size: int, max_streams: int, k: int = DEFAULT_K) -> int:
    """Payload capacity of an entry given the deployment parameters."""
    overhead = 2 + 2 + max_streams * header_bytes(k) + 4
    return entry_size - overhead
