"""The CORFU sequencer, extended with stream backpointer state.

Paper section 2.2: "the cluster contains a dedicated sequencer node,
which is essentially a networked counter storing the current tail of the
shared log." Section 5 extends it: "the sequencer now accepts a set of
stream IDs in the client's request, and maintains the last K offsets it
has issued for each stream ID. Using this information, the sequencer
returns a set of stream headers in response to the increment request,
along with the new offset. ... The sequencer also supports an interface
to return this information without incrementing the counter."

The sequencer is pure soft state: the tail is recoverable via the slow
check, and the backpointer map is recoverable by scanning the log
backward (see :mod:`repro.corfu.reconfig`). With K=4 the state is
32 bytes per stream — "32MB for 1M streams".
"""

from __future__ import annotations

import threading
from typing import Dict, List, Sequence, Tuple

from repro.corfu.entry import DEFAULT_K, NO_BACKPOINTER
from repro.errors import NodeDownError, SealedError


class Sequencer:
    """A networked counter plus per-stream tail tracking."""

    def __init__(self, name: str, k: int = DEFAULT_K) -> None:
        self.name = name
        self.k = k
        self._tail = 0
        self._epoch = 0
        self._down = False
        self._lock = threading.Lock()
        # stream id -> last K offsets issued, newest first.
        self._stream_tails: Dict[int, List[int]] = {}
        # Counters for tests / the performance model. ``increments``
        # counts grant RPCs; ``offsets_issued`` counts offsets those
        # grants reserved, so a batched grant (count=n) shows as one
        # RPC covering n offsets.
        self.increments = 0
        self.offsets_issued = 0
        self.queries = 0

    # -- lifecycle ----------------------------------------------------------

    def crash(self) -> None:
        """Fail the sequencer; its soft state is lost.

        Taken under the lock so an in-flight ``increment``/``query``
        from another thread observes either the live state or the
        crash, never a half-cleared tail/backpointer map.
        """
        with self._lock:
            self._down = True
            self._tail = 0
            self._stream_tails = {}

    @property
    def is_down(self) -> bool:
        with self._lock:
            return self._down

    @property
    def epoch(self) -> int:
        with self._lock:
            return self._epoch

    def _check(self, epoch: int) -> None:
        if self._down:
            raise NodeDownError(self.name)
        if epoch < self._epoch:
            raise SealedError(self._epoch)

    def seal(self, epoch: int) -> None:
        """Fence requests below *epoch* (reconfiguration support).

        Serialized against ``increment``/``query`` via the lock: once
        seal returns, no concurrently running request can complete at
        the old epoch (that is the whole point of sealing).
        """
        with self._lock:
            if self._down:
                raise NodeDownError(self.name)
            if epoch <= self._epoch:
                raise SealedError(self._epoch)
            self._epoch = epoch

    def bootstrap(self, tail: int, stream_tails: Dict[int, List[int]], epoch: int) -> None:
        """Install recovered state into a fresh sequencer instance.

        Called by reconfiguration after recovering the tail via the slow
        check and the backpointer map via a backward log scan. A
        bootstrap carrying a stale epoch is rejected: state recovered
        under an old projection must never overwrite a sequencer that
        has already been sealed into a newer one.
        """
        with self._lock:
            if epoch < self._epoch:
                raise SealedError(self._epoch)
            self._down = False
            self._epoch = epoch
            self._tail = tail
            self._stream_tails = {
                sid: list(offsets[: self.k])
                for sid, offsets in stream_tails.items()
            }

    # -- the counter --------------------------------------------------------

    def increment(
        self, stream_ids: Sequence[int] = (), epoch: int = 0, count: int = 1
    ) -> Tuple[int, Dict[int, Tuple[int, ...]]]:
        """Reserve *count* consecutive offsets; return the first one.

        For each requested stream, returns the last K offsets previously
        issued to that stream (newest first) — the raw material for the
        entry's backpointer headers — and then records the newly issued
        offsets as the stream's most recent entries.

        Multi-offset reservations (count > 1) assign every reserved
        offset to every requested stream; the common case is count=1.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        with self._lock:
            self._check(epoch)
            first = self._tail
            self._tail += count
            self.increments += 1
            self.offsets_issued += count
            backpointers: Dict[int, Tuple[int, ...]] = {}
            for sid in stream_ids:
                prior = self._stream_tails.get(sid, [])
                backpointers[sid] = (
                    tuple(prior[: self.k]) or (NO_BACKPOINTER,) * self.k
                )
                issued = list(range(first + count - 1, first - 1, -1))
                self._stream_tails[sid] = (issued + prior)[: self.k]
            return first, backpointers

    def query(
        self, stream_ids: Sequence[int] = (), epoch: int = 0
    ) -> Tuple[int, Dict[int, Tuple[int, ...]]]:
        """Fast check: current tail + per-stream last-K offsets, no increment.

        This is the sub-millisecond tail check of section 2.2 and the
        "return this information without incrementing the counter"
        interface of section 5 that clients use on startup and on sync.
        """
        with self._lock:
            self._check(epoch)
            self.queries += 1
            result = {
                sid: tuple(self._stream_tails.get(sid, ())) for sid in stream_ids
            }
            return self._tail, result

    def stream_state_bytes(self) -> int:
        """Approximate soft-state footprint: K 8-byte offsets per stream."""
        with self._lock:
            return len(self._stream_tails) * self.k * 8

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "down" if self._down else f"tail={self._tail} epoch={self._epoch}"
        return f"<Sequencer {self.name} {state} streams={len(self._stream_tails)}>"
