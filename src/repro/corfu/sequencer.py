"""The CORFU sequencer, extended with stream backpointer state.

Paper section 2.2: "the cluster contains a dedicated sequencer node,
which is essentially a networked counter storing the current tail of the
shared log." Section 5 extends it: "the sequencer now accepts a set of
stream IDs in the client's request, and maintains the last K offsets it
has issued for each stream ID. Using this information, the sequencer
returns a set of stream headers in response to the increment request,
along with the new offset. ... The sequencer also supports an interface
to return this information without incrementing the counter."

The sequencer is pure soft state: the tail is recoverable via the slow
check, and the backpointer map is recoverable by scanning the log
backward (see :mod:`repro.corfu.reconfig`). With K=4 the state is
32 bytes per stream — "32MB for 1M streams".

**Sharding.** The paper's own Fig. 2 shows this single counter behind a
single lock is the throughput ceiling of the whole design. To break it,
a :class:`Sequencer` can be one *shard* of a group: shard ``i`` of ``N``
owns every stream with ``sid % N == i`` and issues only offsets
``≡ i (mod N)`` — a striped slice of the global offset space — so
single-stream grants (the common case) touch exactly one shard's lock
and scale with shard count. Internally the counter counts *slots*
(``offset = slot * N + i``), which with the default ``(i=0, N=1)``
degenerates to exactly the classic dense counter.

A multiappend spanning shards takes a **vector grant** driven by the
client: one :meth:`reserve_group` per touched shard (ascending shard
order, with a ratcheting floor), then one :meth:`commit_group` per
touched shard recording the vector's maximum as every touched stream's
newest offset. The entry is written once, at that maximum; the lower
reservations are burned (ordinary holes) and carry marker entries so
per-stripe recovery still finds the cross-shard entry (see
:func:`repro.corfu.entry.encode_vector_marker`).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.corfu.entry import DEFAULT_K, NO_BACKPOINTER
from repro.errors import NodeDownError, SealedError, StaleGrantError


def shard_name(group: str, index: int) -> str:
    """Canonical node name of shard *index* of sequencer group *group*."""
    return f"{group}.{index}"


class Sequencer:
    """A networked counter plus per-stream tail tracking.

    With ``num_shards > 1`` this instance is one independently-locked
    shard of a group, owning offsets ``≡ shard_index (mod num_shards)``.
    """

    def __init__(
        self,
        name: str,
        k: int = DEFAULT_K,
        shard_index: int = 0,
        num_shards: int = 1,
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if not 0 <= shard_index < num_shards:
            raise ValueError(
                f"shard_index {shard_index} out of range for "
                f"{num_shards} shards"
            )
        self.name = name
        self.k = k
        self.shard_index = shard_index
        self.num_shards = num_shards
        # The counter counts *slots*; slot t is global offset
        # t * num_shards + shard_index. With (0, 1) this is the classic
        # dense tail counter, bit for bit.
        self._tail = 0
        self._epoch = 0
        self._down = False
        self._lock = threading.Lock()
        # stream id -> last K offsets issued, newest first.
        self._stream_tails: Dict[int, List[int]] = {}
        # Counters for tests / the performance model. ``increments``
        # counts grant RPCs; ``offsets_issued`` counts offsets those
        # grants reserved, so a batched grant (count=n) shows as one
        # RPC covering n offsets.
        self.increments = 0
        self.offsets_issued = 0
        self.queries = 0

    # -- striping helpers (pure arithmetic, callable under the lock) --------

    def _offset_of(self, slot: int) -> int:
        return slot * self.num_shards + self.shard_index

    def _slot_covering(self, offset: int) -> int:
        """Smallest slot whose global offset is >= *offset*."""
        return max(0, -(-(offset - self.shard_index) // self.num_shards))

    def _tail_offset_locked(self) -> int:
        """This shard's contribution to the global tail.

        One past the highest offset this shard has issued, or 0 if it
        has issued nothing; the global tail is the max over shards.
        """
        if self._tail == 0:
            return 0
        return self._offset_of(self._tail - 1) + 1

    # -- lifecycle ----------------------------------------------------------

    def crash(self) -> None:
        """Fail the sequencer; its soft state is lost.

        Taken under the lock so an in-flight ``increment``/``query``
        from another thread observes either the live state or the
        crash, never a half-cleared tail/backpointer map.
        """
        with self._lock:
            self._down = True
            self._tail = 0
            self._stream_tails = {}

    @property
    def is_down(self) -> bool:
        with self._lock:
            return self._down

    @property
    def epoch(self) -> int:
        with self._lock:
            return self._epoch

    def _check(self, epoch: int) -> None:
        if self._down:
            raise NodeDownError(self.name)
        if epoch < self._epoch:
            raise SealedError(self._epoch)

    def seal(self, epoch: int) -> None:
        """Fence requests below *epoch* (reconfiguration support).

        Serialized against ``increment``/``query`` via the lock: once
        seal returns, no concurrently running request can complete at
        the old epoch (that is the whole point of sealing).
        """
        with self._lock:
            if self._down:
                raise NodeDownError(self.name)
            if epoch <= self._epoch:
                raise SealedError(self._epoch)
            self._epoch = epoch

    def bootstrap(self, tail: int, stream_tails: Dict[int, List[int]], epoch: int) -> None:
        """Install recovered state into a fresh sequencer instance.

        Called by reconfiguration after recovering the tail via the slow
        check and the backpointer map via a backward log scan. *tail* is
        the recovered **global** tail; a striped shard resumes at the
        first of its own offsets at or above it. A bootstrap carrying a
        stale epoch is rejected: state recovered under an old projection
        must never overwrite a sequencer that has already been sealed
        into a newer one.
        """
        with self._lock:
            if epoch < self._epoch:
                raise SealedError(self._epoch)
            self._down = False
            self._epoch = epoch
            self._tail = self._slot_covering(tail)
            self._stream_tails = {
                sid: list(offsets[: self.k])
                for sid, offsets in stream_tails.items()
            }

    # -- the counter --------------------------------------------------------

    def increment(
        self, stream_ids: Sequence[int] = (), epoch: int = 0, count: int = 1
    ) -> Tuple[int, Dict[int, Tuple[int, ...]]]:
        """Reserve *count* offsets of this shard's stripe; return the first.

        For each requested stream, returns the last K offsets previously
        issued to that stream (newest first) — the raw material for the
        entry's backpointer headers — and then records the newly issued
        offsets as the stream's most recent entries.

        Multi-offset reservations (count > 1) assign every reserved
        offset to every requested stream; the common case is count=1.
        On a striped shard consecutive reservations are ``num_shards``
        apart (offsets ``first, first + N, ...``); with the default
        single shard they are dense.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        with self._lock:
            self._check(epoch)
            first = self._offset_of(self._tail)
            stride = self.num_shards
            self._tail += count
            self.increments += 1
            self.offsets_issued += count
            # Built once for the whole grant: the issued offsets, newest
            # first, are identical for every requested stream.
            issued = list(
                range(first + (count - 1) * stride, first - 1, -stride)
            )
            backpointers: Dict[int, Tuple[int, ...]] = {}
            for sid in stream_ids:
                prior = self._stream_tails.get(sid, [])
                backpointers[sid] = (
                    tuple(prior[: self.k]) or (NO_BACKPOINTER,) * self.k
                )
                self._stream_tails[sid] = (issued + prior)[: self.k]
            return first, backpointers

    def reserve_group(self, floor: int = 0, epoch: int = 0) -> int:
        """Phase 1 of a vector grant: reserve one stripe offset >= *floor*.

        The client walks the touched shards in ascending (canonical)
        shard order, feeding each reservation plus one as the next
        shard's floor, so the last reservation is the maximum of the
        vector — the offset the entry is written at. Stripe offsets
        skipped to clear the floor are never issued (the counter jumps
        over them); reservations below the maximum are burned by the
        client as holes.
        """
        with self._lock:
            self._check(epoch)
            slot = max(self._tail, self._slot_covering(floor))
            self._tail = slot + 1
            self.increments += 1
            self.offsets_issued += 1
            return self._offset_of(slot)

    def commit_group(
        self, stream_ids: Sequence[int], offset: int, epoch: int = 0
    ) -> Dict[int, Tuple[int, ...]]:
        """Phase 2 of a vector grant: record *offset* for this shard's streams.

        Returns each stream's prior last-K offsets (the entry's
        backpointer material), then records *offset* as its newest and
        bumps the counter past *offset* so later local grants stay
        above it (per-stream offset order must equal grant order).

        Raises :class:`~repro.errors.StaleGrantError` — mutating
        nothing — if any touched stream's newest recorded offset
        already exceeds *offset*: a racing single-shard append was
        granted after our reservation, and recording the older offset
        on top of it would reorder the stream.

        Idempotent under response loss: a retry finding *offset*
        already newest for a stream returns that stream's remaining
        priors instead of re-recording (one backpointer of redundancy
        may be shed — advisory state, absorbed by K-redundancy).
        """
        with self._lock:
            self._check(epoch)
            # Validate before mutating so a stale grant leaves no
            # partial record behind.
            for sid in stream_ids:
                tails = self._stream_tails.get(sid)
                if tails and tails[0] > offset:
                    raise StaleGrantError(offset)
            self.increments += 1
            backpointers: Dict[int, Tuple[int, ...]] = {}
            for sid in stream_ids:
                tails = self._stream_tails.get(sid, [])
                if tails and tails[0] == offset:
                    prior = tails[1:]  # idempotent retry
                else:
                    prior = tails
                    self._stream_tails[sid] = ([offset] + prior)[: self.k]
                backpointers[sid] = (
                    tuple(prior[: self.k]) or (NO_BACKPOINTER,) * self.k
                )
            self._tail = max(self._tail, self._slot_covering(offset + 1))
            return backpointers

    def query(
        self, stream_ids: Sequence[int] = (), epoch: int = 0
    ) -> Tuple[int, Dict[int, Tuple[int, ...]]]:
        """Fast check: current tail + per-stream last-K offsets, no increment.

        This is the sub-millisecond tail check of section 2.2 and the
        "return this information without incrementing the counter"
        interface of section 5 that clients use on startup and on sync.
        A striped shard reports its own contribution to the global tail
        (one past its highest issued offset); the client maxes over the
        shards it cares about.
        """
        with self._lock:
            self._check(epoch)
            self.queries += 1
            result = {
                sid: tuple(self._stream_tails.get(sid, ())) for sid in stream_ids
            }
            return self._tail_offset_locked(), result

    def stream_state_bytes(self) -> int:
        """Approximate soft-state footprint: K 8-byte offsets per stream."""
        with self._lock:
            return len(self._stream_tails) * self.k * 8

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "down" if self._down else f"tail={self._tail} epoch={self._epoch}"
        shard = (
            f" shard={self.shard_index}/{self.num_shards}"
            if self.num_shards > 1
            else ""
        )
        return f"<Sequencer {self.name}{shard} {state} streams={len(self._stream_tails)}>"


class ShardedSequencer:
    """A sequencer group: N independently-locked striped shards.

    Owns nothing but the shard instances — the group object itself is
    immutable after construction and holds **no lock of its own**, so
    it adds no node to the lock hierarchy (each shard's
    ``Sequencer._lock`` remains a leaf; see ``docs/CONCURRENCY.md``).
    Stream ``sid`` belongs to shard ``sid % shards``; shard ``i``
    issues offsets ``≡ i (mod shards)``. With ``shards=1`` the single
    shard is an ordinary dense sequencer named *name* itself, so the
    group is wire- and behavior-compatible with the classic deployment.
    """

    def __init__(self, name: str, shards: int = 1, k: int = DEFAULT_K) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.name = name
        self.num_shards = shards
        if shards == 1:
            self.shards: Tuple[Sequencer, ...] = (Sequencer(name, k=k),)
        else:
            self.shards = tuple(
                Sequencer(
                    shard_name(name, i), k=k, shard_index=i, num_shards=shards
                )
                for i in range(shards)
            )

    def shard_names(self) -> Tuple[str, ...]:
        return tuple(s.name for s in self.shards)

    def shard_for(self, stream_id: int) -> Sequencer:
        """The shard owning *stream_id*."""
        return self.shards[stream_id % self.num_shards]

    def seal(self, epoch: int) -> None:
        """Seal every shard at *epoch* (callers absorb per-shard errors)."""
        for shard in self.shards:
            shard.seal(epoch)

    def tail(self) -> int:
        """The global tail: max of the shards' contributions."""
        return max(shard.query(())[0] for shard in self.shards)

    def __iter__(self) -> Iterator[Sequencer]:
        return iter(self.shards)

    def __len__(self) -> int:
        return self.num_shards

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ShardedSequencer {self.name} shards={self.num_shards}>"
