"""Reconfiguration: seal-and-advance projection changes.

Paper section 5, "Failure Handling": "we modified reconfiguration in
CORFU to include the sequencer as a first-class member of the
'projection' or membership view. When the sequencer fails, the system is
reconfigured to a new view with a different sequencer, using the same
protocol used by CORFU to eject failed storage nodes. Any client
attempting to write to a storage node after obtaining an offset from the
old sequencer will receive an error message, forcing it to update its
view and switch to the new sequencer. ... Once a new sequencer comes up,
it has to reconstruct its backpointer state; in the current
implementation, this is done by scanning backward on the shared log."

The protocol is the standard CORFU seal-and-advance: (1) seal every
reachable node of the old projection at the new epoch, so no in-flight
operation from the old epoch can complete; (2) recover whatever soft
state the new configuration needs (the tail via the slow check, the
backpointer map via a backward scan); (3) install the new projection at
the auxiliary.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.corfu.cluster import CorfuCluster
from repro.corfu.layout import Projection
from repro.errors import (
    NodeDownError,
    RpcTimeout,
    SealedError,
    TrimmedError,
    UnwrittenError,
)

#: Endpoint name used when no driving client is identified (e.g. the
#: durable-cluster bootstrap). Client-driven reconfiguration passes the
#: client's own endpoint name, so partitions apply to it faithfully.
_DEFAULT_SOURCE = "reconfig"

#: Per-node RPC attempts before reconfiguration gives a node up as
#: unreachable. Sealing must try hard: an unsealed reachable node could
#: keep serving stale-epoch requests.
_RPC_ATTEMPTS = 8


def _storage_rpc(cluster: CorfuCluster, source: str, node: str):
    return cluster.transport.proxy(source, node, lambda: cluster.storage(node))


def _sequencer_rpc(cluster: CorfuCluster, source: str, node: str):
    return cluster.transport.proxy(source, node, lambda: cluster.sequencer(node))


def _seal_one(cluster: CorfuCluster, source: str, proxy, new_epoch: int) -> None:
    """Seal one node, retrying through timeouts; unreachable nodes pass.

    A node we cannot reach after the retry budget is treated exactly
    like a dead one: it cannot serve this partition's clients either
    way, and if it is alive-but-partitioned its chain peers are sealed,
    so any stale-epoch chain operation still fails to complete.
    """
    for attempt in range(_RPC_ATTEMPTS):
        try:
            proxy.seal(new_epoch)
            return
        except (NodeDownError, SealedError):
            return  # dead nodes can't serve stale requests anyway
        except RpcTimeout:
            cluster.transport.backoff(source, attempt)


def seal_cluster(
    cluster: CorfuCluster,
    old: Projection,
    new_epoch: int,
    source: str = _DEFAULT_SOURCE,
) -> None:
    """Seal every reachable node (storage + sequencer) of *old* at *new_epoch*.

    A sharded sequencer group is sealed shard by shard; surviving
    shards keep their soft state across the epoch bump (sealing only
    fences stale-epoch requests, it clears nothing).
    """
    for name in old.all_nodes():
        _seal_one(cluster, source, _storage_rpc(cluster, source, name), new_epoch)
    for name in old.sequencer_shards:
        _seal_one(
            cluster, source, _sequencer_rpc(cluster, source, name), new_epoch
        )


def eject_storage_node(
    cluster: CorfuCluster, node: str, source: str = _DEFAULT_SOURCE
) -> Projection:
    """Remove a failed storage node from its chain; returns the new projection.

    Idempotent under races: if another client already ejected the node,
    the install fails with a stale epoch and we simply return the
    current projection.
    """
    old = cluster.projection
    if node not in old.all_nodes():
        return old  # already ejected by someone else
    chain = next(rs for rs in old.replica_sets if node in rs.nodes)
    if len(chain.nodes) <= 1:
        # The last replica of a chain holds the only copy of its pages;
        # ejecting it would lose data. A trigger-happy failure detector
        # (e.g. a lossy network) must get the old projection back and
        # keep retrying against the suspect node instead.
        return old
    new = old.with_node_ejected(node)
    seal_cluster(cluster, old, new.epoch, source=source)
    try:
        cluster.install_projection(new)
    except ValueError:
        return cluster.projection
    return new


def slow_check_tail(
    cluster: CorfuCluster, projection: Projection, source: str = _DEFAULT_SOURCE
) -> int:
    """Recover the global tail from storage-node local tails.

    This is the slow check of section 2.2: query each replica set for
    its highest written local address and invert the mapping function.
    Persistently unreachable nodes are skipped — their chain peers hold
    the same tail.
    """
    tail = 0
    for set_index, rset in enumerate(projection.replica_sets):
        local_tail = 0
        for node in rset:
            proxy = _storage_rpc(cluster, source, node)
            for attempt in range(_RPC_ATTEMPTS):
                try:
                    local_tail = max(local_tail, proxy.local_tail())
                    break
                except NodeDownError:
                    break
                except RpcTimeout:
                    cluster.transport.backoff(source, attempt)
        if local_tail > 0:
            tail = max(
                tail, projection.global_offset(set_index, local_tail - 1) + 1
            )
    return tail


def rebuild_stream_tails(
    cluster: CorfuCluster,
    projection: Projection,
    tail: int,
    k: int,
    epoch: int,
    source: str = _DEFAULT_SOURCE,
) -> Dict[int, List[int]]:
    """Reconstruct the sequencer's per-stream last-K map by backward scan.

    Reads entries from ``tail - 1`` down to 0 and records, for each
    stream, the most recent K offsets it appears at. Holes and trimmed
    offsets are skipped; junk entries carry no stream headers and
    contribute nothing.

    If the scan meets a sequencer checkpoint entry (see
    :func:`checkpoint_sequencer_state`), it stops there: the checkpoint
    holds the state as of its own offset, and everything newer was just
    scanned. The snapshot's per-stream offsets fill whatever slots the
    scan has not already filled with newer ones.
    """
    import json

    from repro.corfu.entry import LogEntry

    stream_tails: Dict[int, List[int]] = {}
    for offset in range(tail - 1, -1, -1):
        rset, address = projection.map_offset(offset)
        raw = _read_any_replica(cluster, rset, address, epoch, source)
        if raw is None:
            continue
        entry = LogEntry.decode(raw, offset, k)
        for header in entry.headers:
            offsets = stream_tails.setdefault(header.stream_id, [])
            if len(offsets) < k:
                offsets.append(offset)
        if not entry.is_junk and entry.payload.startswith(_SEQ_CKPT_MAGIC):
            snapshot = json.loads(entry.payload[len(_SEQ_CKPT_MAGIC):])
            for sid_str, old_offsets in snapshot.items():
                sid = int(sid_str)
                merged = stream_tails.setdefault(sid, [])
                for old in old_offsets:
                    if len(merged) >= k:
                        break
                    if old < offset and old not in merged:
                        merged.append(old)
            break
    return stream_tails


def rebuild_shard_stream_tails(
    cluster: CorfuCluster,
    projection: Projection,
    tail: int,
    k: int,
    epoch: int,
    shard_index: int,
    num_shards: int,
    source: str = _DEFAULT_SOURCE,
) -> Dict[int, List[int]]:
    """Reconstruct one sequencer shard's per-stream map from its stripe.

    Scans only offsets ``≡ shard_index (mod num_shards)`` below *tail*
    — the slice this shard issues — so recovering one crashed shard
    reads ``1/N`` of the log and never halts the other shards. Two
    sources feed the map, both restricted to streams this shard owns
    (``sid % num_shards == shard_index``):

    - stream headers of entries in the stripe (single-shard appends,
      and cross-shard entries whose final offset landed in this
      stripe);
    - vector-grant **markers** (see
      :func:`repro.corfu.entry.decode_vector_marker`): a cross-shard
      entry living in another stripe left a marker at the reservation
      it burned here, naming its final offset and this shard's streams.

    Marker-referenced offsets arrive out of scan order, so candidates
    are collected per stream and sorted newest-first at the end.
    """
    from repro.corfu.entry import LogEntry, decode_vector_marker

    candidates: Dict[int, set] = {}

    def note(sid: int, offset: int) -> None:
        if sid % num_shards == shard_index:
            candidates.setdefault(sid, set()).add(offset)

    start = tail - 1 - ((tail - 1 - shard_index) % num_shards)
    for offset in range(start, -1, -num_shards) if start >= 0 else ():
        rset, address = projection.map_offset(offset)
        raw = _read_any_replica(cluster, rset, address, epoch, source)
        if raw is None:
            continue
        entry = LogEntry.decode(raw, offset, k)
        for header in entry.headers:
            note(header.stream_id, offset)
        if not entry.is_junk and not entry.headers:
            marker = decode_vector_marker(entry.payload)
            if marker is not None:
                final_offset, stream_ids = marker
                for sid in stream_ids:
                    note(sid, final_offset)
    return {
        sid: sorted(offsets, reverse=True)[:k]
        for sid, offsets in candidates.items()
    }


def replace_sequencer_shard(
    cluster: CorfuCluster,
    shard_index: int,
    new_name: Optional[str] = None,
    source: str = _DEFAULT_SOURCE,
) -> Projection:
    """Fail over one sequencer shard, recovering its stripe's soft state.

    The seal-and-advance protocol of :func:`replace_sequencer`, scoped
    to one shard: the whole old epoch is sealed (healthy shards simply
    continue at the new one, soft state intact), the global tail is
    recovered with the slow check, the dead shard's per-stream map is
    rebuilt by a backward scan of **its own stripe only**, and the
    replacement — bootstrapped with the global tail, so its next issue
    lands above everything granted so far — joins the projection in the
    dead shard's place.
    """
    old = cluster.projection
    shards = old.sequencer_shards
    if not 0 <= shard_index < len(shards):
        raise ValueError(
            f"shard index {shard_index} out of range for {len(shards)} shards"
        )
    if len(shards) == 1:
        return replace_sequencer(cluster, new_name, source=source)
    if new_name is None:
        new_name = f"seq-{old.epoch + 1}.{shard_index}"
    new = old.with_seq_shard(shard_index, new_name)
    seal_cluster(cluster, old, new.epoch, source=source)
    tail = slow_check_tail(cluster, new, source=source)
    stream_tails = rebuild_shard_stream_tails(
        cluster,
        new,
        tail,
        cluster.k,
        new.epoch,
        shard_index,
        len(shards),
        source=source,
    )
    cluster.create_sequencer(
        new_name, shard_index=shard_index, num_shards=len(shards)
    )
    replacement = _sequencer_rpc(cluster, source, new_name)
    for attempt in range(_RPC_ATTEMPTS):
        try:
            replacement.bootstrap(tail, stream_tails, new.epoch)
            break
        except SealedError:
            # A racing reconfiguration moved past us; its projection
            # already carries recovered state.
            return cluster.projection
        except RpcTimeout as exc:
            cluster.transport.backoff(source, attempt)
            if attempt == _RPC_ATTEMPTS - 1:
                raise NodeDownError(exc.node)
    try:
        cluster.install_projection(new)
    except ValueError:
        return cluster.projection
    return new


#: Stream id reserved for sequencer state checkpoints. Stream ids are
#: 31-bit; Tango object ids in practice stay tiny, so the top of the
#: space is free for infrastructure streams.
SEQUENCER_CHECKPOINT_STREAM = (1 << 31) - 1

_SEQ_CKPT_MAGIC = b"SEQCKPT1"


def checkpoint_sequencer_state(cluster: CorfuCluster) -> int:
    """Store the sequencer's backpointer map in the log; returns its offset.

    Implements the optimization section 5 leaves as future work: "we
    plan on expediting this by having the sequencer store periodic
    checkpoints in the log." A later failover scans backward only to the
    newest checkpoint instead of to the beginning of the log.

    Ordering matters: the checkpoint's offset C is reserved *first*,
    then the state is snapshotted. Every reservation issued before ours
    is in the snapshot; every one issued after has an offset above C and
    is covered by the recovery scan. Nothing can fall between.
    """
    import json

    from repro.corfu.entry import LogEntry, make_header
    from repro.corfu.replication import ChainReplicator

    proj = cluster.projection
    if proj.seq_shards:
        raise ValueError(
            "sequencer checkpoints are not supported for sharded groups; "
            "per-shard recovery scans only 1/N of the log already"
        )
    # The increment and the snapshot read are sequencer-local (the
    # sequencer checkpoints its own soft state); only the chain write
    # that persists the snapshot crosses the network, with the
    # sequencer itself as the writing endpoint.
    seq = cluster.sequencer(proj.sequencer)
    offset, backpointers = seq.increment(
        (SEQUENCER_CHECKPOINT_STREAM,), epoch=proj.epoch
    )
    snapshot = {
        str(sid): list(offsets)
        for sid, offsets in seq._stream_tails.items()  # noqa: SLF001
    }
    payload = _SEQ_CKPT_MAGIC + json.dumps(snapshot).encode("utf-8")
    header = make_header(
        SEQUENCER_CHECKPOINT_STREAM,
        backpointers[SEQUENCER_CHECKPOINT_STREAM],
        offset,
        cluster.k,
    )
    entry = LogEntry(headers=(header,), payload=payload)
    raw = entry.encode(offset, cluster.k, cluster.max_streams)
    rset, address = proj.map_offset(offset)
    chain = ChainReplicator(
        lambda node: _storage_rpc(cluster, proj.sequencer, node)
    )
    chain.write(rset, address, raw, proj.epoch)
    return offset


def _read_any_replica(
    cluster, rset, address: int, epoch: int, source: str = _DEFAULT_SOURCE
):
    """Read one page from any surviving replica, tail first.

    Recovery must tolerate replicas that crashed without having been
    ejected from the projection yet: the tail may be down while the
    head still holds the data. Reading towards the head may observe an
    in-flight (head-only) write — acceptable here, since the winner of
    that offset will complete the chain, and advisory backpointer state
    may safely reference it. Returns None for holes, trimmed pages, or
    fully unreachable chains (the scan skips the offset). Timeouts are
    retried per replica before that replica is given up as unreachable
    — a dropped recovery read must not silently shrink stream state.
    """
    for node in reversed(rset.nodes):
        proxy = _storage_rpc(cluster, source, node)
        for attempt in range(_RPC_ATTEMPTS):
            try:
                return proxy.read(address, epoch)
            except TrimmedError:
                return None
            except (UnwrittenError, NodeDownError):
                # A tail-unwritten page may still be an in-flight write
                # held at an upstream replica; walk towards the head.
                break
            except RpcTimeout:
                cluster.transport.backoff(source, attempt)
    return None


def replace_sequencer(
    cluster: CorfuCluster,
    new_name: Optional[str] = None,
    source: str = _DEFAULT_SOURCE,
) -> Projection:
    """Fail over to a new sequencer, recovering its soft state.

    Steps: seal the old epoch everywhere, recover the tail with the slow
    check, rebuild the backpointer map by scanning backward, bootstrap
    the replacement, and install the new projection.
    """
    old = cluster.projection
    if old.seq_shards:
        raise ValueError(
            "sequencer is sharded; fail over one shard with "
            "replace_sequencer_shard()"
        )
    if new_name is None:
        new_name = f"seq-{old.epoch + 1}"
    new = old.with_sequencer(new_name)
    seal_cluster(cluster, old, new.epoch, source=source)
    tail = slow_check_tail(cluster, new, source=source)
    stream_tails = rebuild_stream_tails(
        cluster, new, tail, cluster.k, new.epoch, source=source
    )
    replacement = _sequencer_rpc(cluster, source, new_name)
    for attempt in range(_RPC_ATTEMPTS):
        try:
            replacement.bootstrap(tail, stream_tails, new.epoch)
            break
        except SealedError:
            # A racing reconfiguration moved past us; its projection
            # already carries recovered state.
            return cluster.projection
        except RpcTimeout as exc:
            cluster.transport.backoff(source, attempt)
            if attempt == _RPC_ATTEMPTS - 1:
                raise NodeDownError(exc.node)
    try:
        cluster.install_projection(new)
    except ValueError:
        return cluster.projection
    return new
