"""Durable flash units: file-backed write-once storage.

The in-memory :class:`~repro.corfu.storage.FlashUnit` simulates an SSD
for a single process's lifetime; :class:`DurableFlashUnit` persists the
same write-once address space to a file, so a CORFU deployment — and
therefore every Tango object on it — survives process restarts, not
just node crashes.

The on-disk format is a simple intention log of framed records, append
only (matching how flash is written in practice):

``[op:u8][epoch:u64][address:u64][length:u32][data]``

- ``W`` — a page write;
- ``T`` — a single-address trim;
- ``P`` — a prefix trim (address is the new prefix);
- ``S`` — a seal (epoch is the new epoch).

Replaying the file rebuilds the unit exactly; torn trailing records
(from a crash mid-write) are discarded.
"""

from __future__ import annotations

import logging
import os
import struct

from repro.corfu.storage import FlashUnit

logger = logging.getLogger(__name__)

_FRAME = struct.Struct("<BQQI")
_OP_WRITE = ord("W")
_OP_TRIM = ord("T")
_OP_TRIM_PREFIX = ord("P")
_OP_SEAL = ord("S")


class DurableFlashUnit(FlashUnit):
    """A flash unit whose contents survive process restarts."""

    def __init__(self, name: str, path: str) -> None:
        super().__init__(name)
        self._path = path
        if os.path.exists(path):
            self._replay()
        self._file = open(path, "ab")

    # -- persistence ---------------------------------------------------------

    def _append_frame(self, op: int, epoch: int, address: int, data: bytes) -> None:
        # Deliberately holds the unit lock across file I/O: the frame
        # order must match the apply order, and write-once semantics
        # bound each critical section to a single small frame.
        self._file.write(_FRAME.pack(op, epoch, address, len(data)))  # tangolint: disable=TL012
        self._file.write(data)  # tangolint: disable=TL012
        self._file.flush()
        os.fsync(self._file.fileno())

    def _replay(self) -> None:
        """Rebuild state from the intention log, dropping torn tails."""
        with open(self._path, "rb") as f:
            raw = f.read()
        pos = 0
        valid = 0
        torn_reason = None
        while pos + _FRAME.size <= len(raw):
            op, epoch, address, length = _FRAME.unpack_from(raw, pos)
            body_start = pos + _FRAME.size
            if body_start + length > len(raw):
                torn_reason = (
                    f"torn frame at byte {pos} (need {length} body bytes, "
                    f"{len(raw) - body_start} left)"
                )
                break
            data = raw[body_start : body_start + length]
            if op == _OP_WRITE:
                # Recovery replays frames the guarded write() path
                # already validated before persisting them.
                self._pages[address] = data  # tangolint: disable=TL005
            elif op == _OP_TRIM:
                self._pages.pop(address, None)
                self._trimmed_sparse.add(address)
                self._compact_trims()
            elif op == _OP_TRIM_PREFIX:
                for addr in [a for a in self._pages if a < address]:
                    del self._pages[addr]
                self._trimmed_prefix = max(self._trimmed_prefix, address)
                self._trimmed_sparse = {
                    a for a in self._trimmed_sparse if a >= address
                }
            elif op == _OP_SEAL:
                self._epoch = max(self._epoch, epoch)
            else:
                torn_reason = f"unknown frame op 0x{op:02x} at byte {pos}"
                break  # corrupt record: stop trusting the tail
            pos = body_start + length
            valid = pos
        if valid < len(raw):
            if torn_reason is None:
                torn_reason = f"torn frame header at byte {valid}"
            logger.warning(
                "durable log %s: %s; discarding %d trailing bytes "
                "(crash mid-append)",
                self._path,
                torn_reason,
                len(raw) - valid,
            )
            # Truncate the torn tail so future appends stay parseable.
            with open(self._path, "ab") as f:
                f.truncate(valid)

    def close(self) -> None:
        """Release the file handle (the unit becomes unusable)."""
        self._file.close()

    # -- overridden mutations (apply, then persist; atomically) ---------------

    # Each override holds the unit lock (an RLock, so the inherited
    # mutation can re-enter it) across apply *and* persist: otherwise two
    # threads' frames can interleave mid-record in the file, or land in
    # an order that disagrees with the in-memory apply order.

    def write(self, address: int, data: bytes, epoch: int) -> None:
        with self._lock:
            super().write(address, data, epoch)
            self._append_frame(_OP_WRITE, epoch, address, data)

    def trim(self, address: int, epoch: int) -> None:
        with self._lock:
            super().trim(address, epoch)
            self._append_frame(_OP_TRIM, epoch, address, b"")

    def trim_prefix(self, address: int, epoch: int) -> None:
        with self._lock:
            super().trim_prefix(address, epoch)
            self._append_frame(_OP_TRIM_PREFIX, epoch, address, b"")

    def seal(self, epoch: int) -> int:
        with self._lock:
            tail = super().seal(epoch)
            self._append_frame(_OP_SEAL, epoch, 0, b"")
            return tail


def open_durable_cluster(data_dir: str, **kwargs):
    """A :class:`~repro.corfu.cluster.CorfuCluster` backed by *data_dir*.

    By default each storage node persists to a segment-store directory
    ``<data_dir>/<node-name>.store`` (see :mod:`repro.store`); a legacy
    flat file ``<data_dir>/<node-name>.flash`` is migrated into it on
    first open and renamed to ``.flash.migrated``. Pass
    ``segmented=False`` for the original single-flat-file layout.

    Extra storage knobs (all optional): ``segment_bytes`` (roll size),
    ``sync`` (fsync per frame, default True), ``compaction_policy`` (a
    :class:`~repro.store.compactor.CompactionPolicy`).

    Reopening the same directory reconstructs the whole log — Tango
    clients then rebuild their views from it as usual. The sequencer is
    soft state and recovers via the slow check on first use after a
    restart (pass ``recover_sequencer=False`` to skip).
    """
    from repro.corfu import reconfig
    from repro.corfu.cluster import CorfuCluster

    recover_sequencer = kwargs.pop("recover_sequencer", True)
    segmented = kwargs.pop("segmented", True)
    segment_bytes = kwargs.pop("segment_bytes", None)
    sync = kwargs.pop("sync", True)
    compaction_policy = kwargs.pop("compaction_policy", None)
    os.makedirs(data_dir, exist_ok=True)
    cluster = CorfuCluster(**kwargs)
    for name in list(cluster._units):  # noqa: SLF001 - factory wiring
        path = os.path.join(data_dir, f"{name}.flash")
        if segmented:
            from repro.store import DEFAULT_SEGMENT_BYTES, SegmentedFlashUnit

            cluster._units[name] = SegmentedFlashUnit(
                name,
                os.path.join(data_dir, f"{name}.store"),
                segment_bytes=segment_bytes or DEFAULT_SEGMENT_BYTES,
                sync=sync,
                policy=compaction_policy,
                migrate_flat=path,
            )
        else:
            cluster._units[name] = DurableFlashUnit(name, path)
    if recover_sequencer:
        projection = cluster.projection
        tail = reconfig.slow_check_tail(cluster, projection)
        if tail > 0:
            stream_tails = reconfig.rebuild_stream_tails(
                cluster, projection, tail, cluster.k, projection.epoch
            )
            cluster.sequencer(projection.sequencer).bootstrap(
                tail, stream_tails, projection.epoch
            )
    return cluster
