"""Distributed two-phase locking: the Figure 10 (middle) baseline.

Paper section 6.2: "we modified the Tango runtime's EndTX call to
implement a simple, distributed 2-phase locking (2PL) protocol instead
of accessing the shared log; this protocol is similar to that used by
Percolator, except that it implements serializability instead of
snapshot isolation ... On EndTX-2PL, a client first acquires a timestamp
from a centralized server ...; this is the version of the current
transaction. It then locks the items in the read set. If any item has
changed since it was read, the transaction is aborted; if not, the
client then contacts the other clients in the write set to obtain a lock
on each item being modified as well as the latest version of that item.
If any of the returned versions are higher than the current
transaction's version (i.e., a write-write conflict) or a lock cannot be
obtained, the transaction unlocks all items and retries with a new
sequence number. Otherwise, it sends a commit to all the clients
involved, updating the items and their versions and unlocking them."

The implementation here is the functional protocol: partition-owning
nodes holding versioned, lockable items, a centralized timestamp oracle,
and a client driver that counts protocol messages. The benchmark
harness replays these message counts through the performance model to
produce the throughput curves.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple


class TimestampOracle:
    """The centralized timestamp server (one RPC per transaction)."""

    def __init__(self) -> None:
        self._counter = itertools.count(1)
        self.requests = 0

    def next_timestamp(self) -> int:
        self.requests += 1
        return next(self._counter)


@dataclass
class _Item:
    value: Any = None
    version: int = 0
    locked_by: Optional[int] = None  # holding transaction's timestamp


class TwoPLNode:
    """One partition owner: versioned items with per-item locks."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._items: Dict[str, _Item] = {}
        self.messages = 0  # RPCs served

    def _item(self, key: str) -> _Item:
        item = self._items.get(key)
        if item is None:
            item = _Item()
            self._items[key] = item
        return item

    def read(self, key: str) -> Tuple[Any, int]:
        """Unlocked read returning (value, version)."""
        self.messages += 1
        item = self._item(key)
        return item.value, item.version

    def lock(self, key: str, tx_ts: int) -> Tuple[bool, int]:
        """Try to lock *key* for transaction *tx_ts*.

        Returns (acquired, current_version). No blocking: lock failures
        surface immediately and the client backs off and retries, which
        is what keeps the protocol deadlock-free (and what costs it
        throughput under contention).
        """
        self.messages += 1
        item = self._item(key)
        if item.locked_by is not None and item.locked_by != tx_ts:
            return False, item.version
        item.locked_by = tx_ts
        return True, item.version

    def unlock(self, key: str, tx_ts: int) -> None:
        self.messages += 1
        item = self._items.get(key)
        if item is not None and item.locked_by == tx_ts:
            item.locked_by = None

    def commit_write(self, key: str, value: Any, tx_ts: int) -> None:
        """Install a write, stamp its version, and release the lock."""
        self.messages += 1
        item = self._item(key)
        item.value = value
        item.version = tx_ts
        item.locked_by = None


@dataclass
class TxOutcome:
    """Result of one 2PL transaction attempt sequence."""

    committed: bool
    attempts: int
    messages: int
    timestamp: int


class TwoPLClient:
    """Transaction driver for one application client."""

    def __init__(self, system: "TwoPLSystem", name: str) -> None:
        self._system = system
        self.name = name
        self.commits = 0
        self.aborts = 0

    def execute(
        self,
        reads: Sequence[Tuple[str, str]],
        writes: Sequence[Tuple[str, str, Any]],
        max_attempts: int = 16,
    ) -> TxOutcome:
        """Run one transaction.

        *reads* is a sequence of (partition, key); *writes* of
        (partition, key, value). Retries with fresh timestamps on lock
        or version conflicts, as in the paper.
        """
        messages = 0
        # Initial unlocked reads establish the read versions.
        read_versions: Dict[Tuple[str, str], int] = {}
        for part, key in reads:
            _value, version = self._system.node(part).read(key)
            read_versions[(part, key)] = version
            messages += 1

        ts = 0
        for attempt in range(1, max_attempts + 1):
            ts = self._system.oracle.next_timestamp()
            messages += 1
            ok, msgs = self._attempt(ts, reads, writes, read_versions)
            messages += msgs
            if ok:
                self.commits += 1
                return TxOutcome(True, attempt, messages, ts)
            # Stale read: re-reading cannot help serializability — the
            # transaction's reads are fixed. Abort for real.
            if self._reads_stale(reads, read_versions):
                break
        self.aborts += 1
        return TxOutcome(False, max_attempts, messages, ts)

    def _attempt(
        self,
        ts: int,
        reads: Sequence[Tuple[str, str]],
        writes: Sequence[Tuple[str, str, Any]],
        read_versions: Dict[Tuple[str, str], int],
    ) -> Tuple[bool, int]:
        messages = 0
        locked: List[Tuple[str, str]] = []

        def release() -> int:
            count = 0
            for part, key in locked:
                self._system.node(part).unlock(key, ts)
                count += 1
            return count

        # Phase 1a: lock the read set, validating versions.
        for part, key in reads:
            acquired, version = self._system.node(part).lock(key, ts)
            messages += 1
            if not acquired or version != read_versions[(part, key)]:
                messages += release()
                return False, messages
            locked.append((part, key))
        # Phase 1b: lock the write set, checking write-write conflicts.
        for part, key, _value in writes:
            if (part, key) in locked:
                continue
            acquired, version = self._system.node(part).lock(key, ts)
            messages += 1
            if not acquired or version > ts:
                messages += release()
                return False, messages
            locked.append((part, key))
        # Phase 2: commit — install writes and unlock everything.
        written = set()
        for part, key, value in writes:
            self._system.node(part).commit_write(key, value, ts)
            written.add((part, key))
            messages += 1
        for part, key in locked:
            if (part, key) not in written:
                self._system.node(part).unlock(key, ts)
                messages += 1
        return True, messages

    def _reads_stale(
        self,
        reads: Sequence[Tuple[str, str]],
        read_versions: Dict[Tuple[str, str], int],
    ) -> bool:
        for part, key in reads:
            _value, version = self._system.node(part).read(key)
            if version != read_versions[(part, key)]:
                return True
        return False


class TwoPLSystem:
    """A complete 2PL deployment: oracle + partition nodes + clients."""

    def __init__(self, partitions: Sequence[str]) -> None:
        self.oracle = TimestampOracle()
        self._nodes: Dict[str, TwoPLNode] = {
            name: TwoPLNode(name) for name in partitions
        }

    def node(self, partition: str) -> TwoPLNode:
        return self._nodes[partition]

    def client(self, name: str) -> TwoPLClient:
        return TwoPLClient(self, name)

    def total_messages(self) -> int:
        return self.oracle.requests + sum(
            n.messages for n in self._nodes.values()
        )
