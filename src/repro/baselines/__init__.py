"""Baselines the paper compares Tango against."""

from repro.baselines.two_phase_locking import (
    TimestampOracle,
    TwoPLClient,
    TwoPLNode,
    TwoPLSystem,
)

__all__ = ["TimestampOracle", "TwoPLNode", "TwoPLClient", "TwoPLSystem"]
