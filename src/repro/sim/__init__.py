"""Discrete-event simulation substrate for the performance model.

The paper's evaluation ran on a 36-machine testbed; this package is the
machinery we substitute for it (see DESIGN.md, "Substitutions"): a
deterministic event loop (:class:`Simulator`), FIFO queueing servers
(:class:`Server`) for NICs / SSDs / the sequencer, and network links.
The model of the specific testbed lives in :mod:`repro.bench.perfmodel`.
"""

from repro.sim.engine import Simulator, Server, Process
from repro.sim.network import Link, Nic

__all__ = ["Simulator", "Server", "Process", "Link", "Nic"]
