"""A small, fast discrete-event simulation engine.

Processes are plain Python generators that ``yield`` non-negative
floats: "suspend me for this many simulated seconds". Composition uses
``yield from``. Shared contention points (a NIC, an SSD, the sequencer)
are :class:`Server` objects using *timeline reservation*: a FIFO server
with capacity c is represented by the times its c slots become free, so
acquiring it is an O(log c) heap operation that returns the exact
wait-plus-service delay — no queue processes, no context switches.

This is deliberately minimal (no interrupts, no preemption): every model
in :mod:`repro.bench.perfmodel` is an open or closed queueing network of
deterministic servers, which this engine simulates exactly.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Generator, List, Optional, Tuple

#: A simulation process: a generator yielding delays in seconds.
Process = Generator[float, None, None]


class Simulator:
    """The event loop."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List[Tuple[float, int, Process]] = []
        self._seq = itertools.count()
        self._spawned = 0

    def spawn(self, process: Process, delay: float = 0.0) -> None:
        """Schedule *process* to start *delay* seconds from now."""
        self._spawned += 1
        heapq.heappush(self._heap, (self.now + delay, next(self._seq), process))

    def run(self, until: Optional[float] = None) -> None:
        """Run until the event heap drains or simulated *until* passes."""
        while self._heap:
            when, _seq, process = self._heap[0]
            if until is not None and when > until:
                break
            heapq.heappop(self._heap)
            self.now = when
            try:
                delay = next(process)
            except StopIteration:
                continue
            if delay < 0:
                raise ValueError(f"process yielded negative delay {delay}")
            heapq.heappush(
                self._heap, (self.now + delay, next(self._seq), process)
            )
        if until is not None and self.now < until:
            self.now = until


class Server:
    """A FIFO queueing server with fixed capacity.

    ``acquire(service)`` reserves the earliest free slot and returns the
    delay (queueing wait + service time) the calling process must yield.
    Deterministic and exact for work-conserving FIFO service.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._sim = sim
        self.name = name
        self._free_at = [0.0] * capacity
        heapq.heapify(self._free_at)
        self.busy_time = 0.0
        self.requests = 0

    def acquire(self, service: float) -> float:
        """Reserve the server for *service* seconds; returns total delay."""
        if service < 0:
            raise ValueError(f"negative service time {service}")
        now = self._sim.now
        start = max(heapq.heappop(self._free_at), now)
        done = start + service
        heapq.heappush(self._free_at, done)
        self.busy_time += service
        self.requests += 1
        return done - now

    def utilization(self, elapsed: float) -> float:
        """Fraction of *elapsed* time the server spent serving."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / (elapsed * len(self._free_at)))


class Counter:
    """Throughput/latency accumulator shared by model client processes.

    Latencies are sampled into a reservoir (capacity bounded, uniform
    over the run) so percentiles stay O(1) memory even for long
    simulations.
    """

    _RESERVOIR = 4096

    def __init__(self) -> None:
        self.completed = 0
        self.latency_sum = 0.0
        self.extra: dict = {}
        self._samples: List[float] = []
        # Deterministic reservoir: a multiplicative-congruential index
        # stream keeps runs reproducible without random module state.
        self._rng_state = 0x9E3779B9

    def _next_index(self, bound: int) -> int:
        self._rng_state = (self._rng_state * 1103515245 + 12345) & 0x7FFFFFFF
        return self._rng_state % bound

    def record(self, latency: float) -> None:
        self.completed += 1
        self.latency_sum += latency
        if len(self._samples) < self._RESERVOIR:
            self._samples.append(latency)
        else:
            slot = self._next_index(self.completed)
            if slot < self._RESERVOIR:
                self._samples[slot] = latency

    def mean_latency(self) -> float:
        if self.completed == 0:
            return 0.0
        return self.latency_sum / self.completed

    def percentile_latency(self, pct: float) -> float:
        """Approximate latency percentile (pct in [0, 100])."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        index = min(len(ordered) - 1, int(len(ordered) * pct / 100.0))
        return ordered[index]

    def throughput(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return self.completed / elapsed


def measure(
    sim: Simulator,
    duration: float,
    warmup: float = 0.0,
) -> Tuple[float, Callable[[], float]]:
    """Run *sim* for warmup + duration; returns (elapsed, now_fn).

    Helper for experiments: processes should begin recording into their
    counters only after ``warmup`` (they can check ``sim.now``).
    """
    sim.run(until=warmup + duration)
    return duration, lambda: sim.now
