"""Network elements: NICs and links.

The paper's testbed: "36 8-core machines in two racks, with gigabit NICs
on each node and 20 Gbps between the top-of-rack switches". The binding
constraint everywhere in the evaluation is the per-host gigabit NIC —
this is exactly the "playback bottleneck" of section 1 — so we model
each host's NIC as a FIFO server whose service time is the wire time of
the message, plus a fixed one-way propagation/stack latency per hop.
The inter-rack backbone (20 Gbps for 18 hosts) is never the bottleneck
and is folded into the propagation constant.
"""

from __future__ import annotations

from repro.sim.engine import Server, Simulator

#: Bits per byte on the wire including framing overhead (~8b/10b + IP/TCP
#: headers amortized on 4KB messages).
_WIRE_BITS_PER_BYTE = 8.8


class Link:
    """A point-to-point hop: serialization on a shared NIC + latency."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float,
        latency: float,
        name: str = "",
    ) -> None:
        self._sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.latency = latency
        self.server = Server(sim, capacity=1, name=name)

    def transfer(self, nbytes: int) -> float:
        """Delay to push *nbytes* through this hop (wait + wire + prop)."""
        wire = nbytes * _WIRE_BITS_PER_BYTE / self.bandwidth_bps
        return self.server.acquire(wire) + self.latency


class Nic:
    """A host's full-duplex NIC: independent TX and RX directions."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float = 1e9,
        latency: float = 25e-6,
        name: str = "",
    ) -> None:
        self.tx = Link(sim, bandwidth_bps, latency, name=f"{name}.tx")
        self.rx = Link(sim, bandwidth_bps, latency, name=f"{name}.rx")

    def send(self, nbytes: int) -> float:
        return self.tx.transfer(nbytes)

    def recv(self, nbytes: int) -> float:
        return self.rx.transfer(nbytes)


def rpc_delay(
    client: Nic, server: Nic, request_bytes: int, reply_bytes: int, service: float
) -> float:
    """One synchronous RPC: request out, service at the server, reply back.

    Returns the total delay the calling process should yield. The
    service component is *not* a shared server here — pass 0 and model
    server CPU contention with an explicit :class:`Server` when the
    server side is a bottleneck (e.g. the sequencer).
    """
    out = client.send(request_bytes) + server.recv(request_bytes)
    back = server.send(reply_bytes) + client.recv(reply_bytes)
    return out + service + back
