"""Little-endian binary encoding helpers.

CORFU log entries are flat byte strings on the storage units, so every
record type in the system (stream headers, update records, commit
records) serializes itself with these helpers. Each ``pack_*`` function
appends to a ``bytearray``; each ``unpack_*`` function reads from a
``bytes``/``memoryview`` at an offset and returns ``(value, new_offset)``.
"""

from __future__ import annotations

import struct
from typing import Tuple

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


def pack_u16(buf: bytearray, value: int) -> None:
    """Append an unsigned 16-bit integer to *buf*."""
    buf += _U16.pack(value)


def pack_u32(buf: bytearray, value: int) -> None:
    """Append an unsigned 32-bit integer to *buf*."""
    buf += _U32.pack(value)


def pack_u64(buf: bytearray, value: int) -> None:
    """Append an unsigned 64-bit integer to *buf*."""
    buf += _U64.pack(value)


def unpack_u16(buf: bytes, off: int) -> Tuple[int, int]:
    """Read an unsigned 16-bit integer from *buf* at *off*."""
    return _U16.unpack_from(buf, off)[0], off + 2


def unpack_u32(buf: bytes, off: int) -> Tuple[int, int]:
    """Read an unsigned 32-bit integer from *buf* at *off*."""
    return _U32.unpack_from(buf, off)[0], off + 4


def unpack_u64(buf: bytes, off: int) -> Tuple[int, int]:
    """Read an unsigned 64-bit integer from *buf* at *off*."""
    return _U64.unpack_from(buf, off)[0], off + 8


def encode_bytes(buf: bytearray, data: bytes) -> None:
    """Append a length-prefixed byte string to *buf*."""
    pack_u32(buf, len(data))
    buf += data


def decode_bytes(buf: bytes, off: int) -> Tuple[bytes, int]:
    """Read a length-prefixed byte string from *buf* at *off*."""
    length, off = unpack_u32(buf, off)
    return bytes(buf[off : off + length]), off + length


def encode_str(buf: bytearray, text: str) -> None:
    """Append a length-prefixed UTF-8 string to *buf*."""
    encode_bytes(buf, text.encode("utf-8"))


def decode_str(buf: bytes, off: int) -> Tuple[str, int]:
    """Read a length-prefixed UTF-8 string from *buf* at *off*."""
    raw, off = decode_bytes(buf, off)
    return raw.decode("utf-8"), off
