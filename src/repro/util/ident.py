"""Seedable identity generation for clients and writers.

Client ids (which mint transaction ids) and BookKeeper writer tokens
used to be drawn straight from ``random.getrandbits``, which made every
run of the system — and therefore every log — unique. That is fine in
production but fatal for deterministic-replay testing: two runs of the
same workload produced different transaction ids, so logs could not be
compared or replayed bit-for-bit (tangolint rule TL003).

This module routes all identity generation through one injectable,
seedable source. By default identities are still drawn from a
fresh-seeded :class:`random.Random` (unique per process, as before);
tests call :func:`seed_identities` to pin the whole sequence::

    from repro.util.ident import seed_identities
    seed_identities(42)          # every client id / writer token is now
    runtime = TangoRuntime(...)  # reproducible across runs

Callers that need full control (e.g. one deterministic source per
simulated client) construct their own :class:`IdentitySource` and pass
the ids/tokens explicitly.
"""

from __future__ import annotations

import random
import threading
from typing import Optional


class IdentitySource:
    """A thread-safe, seedable source of client ids and writer tokens."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def seed(self, value: int) -> None:
        """Re-seed, making every subsequent identity reproducible."""
        with self._lock:
            self._rng.seed(value)

    def client_id(self) -> int:
        """A non-zero 31-bit client identifier (paper: tx ids embed it)."""
        with self._lock:
            return self._rng.getrandbits(31) | 1

    def writer_token(self) -> str:
        """A BookKeeper writer token (single-writer fencing identity)."""
        with self._lock:
            return f"writer-{self._rng.getrandbits(48):012x}"


#: Process-wide default source. Unseeded (unique per process) unless a
#: test pins it via :func:`seed_identities`.
_DEFAULT = IdentitySource()


def default_source() -> IdentitySource:
    """The process-wide identity source."""
    return _DEFAULT


def seed_identities(seed: int) -> None:
    """Pin the process-wide identity sequence (for deterministic tests)."""
    _DEFAULT.seed(seed)
