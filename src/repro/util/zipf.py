"""Zipfian key selection for YCSB-style workloads.

Figure 9 of the paper chooses transaction keys with either a uniform
distribution or "a highly skewed zipf distribution (corresponding to
workload 'a' of the Yahoo! Cloud Serving Benchmark)". YCSB uses the
rejection-free generator of Gray et al. ("Quickly generating
billion-record synthetic databases", SIGMOD 1994); we implement the same
algorithm so the key-popularity process is statistically identical.
"""

from __future__ import annotations

import math
import random
from typing import Optional

# YCSB's default skew constant for workload 'a'.
YCSB_ZIPFIAN_CONSTANT = 0.99


class ZipfGenerator:
    """Draws integers in ``[0, n)`` with a Zipf(theta) popularity law.

    Item 0 is the most popular. The generator is O(1) per sample after an
    O(1) setup (no harmonic-number table), matching YCSB's
    ``ZipfianGenerator``.
    """

    def __init__(
        self,
        n: int,
        theta: float = YCSB_ZIPFIAN_CONSTANT,
        rng: Optional[random.Random] = None,
    ) -> None:
        if n <= 0:
            raise ValueError(f"zipf universe must be positive, got {n}")
        if not 0.0 < theta < 1.0:
            raise ValueError(f"zipf theta must be in (0, 1), got {theta}")
        self.n = n
        self.theta = theta
        self._rng = rng if rng is not None else random.Random()
        self._alpha = 1.0 / (1.0 - theta)
        self._zetan = self._zeta(n, theta)
        self._zeta2 = self._zeta(2, theta)
        self._eta = (1.0 - (2.0 / n) ** (1.0 - theta)) / (
            1.0 - self._zeta2 / self._zetan
        )

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        """Compute the generalized harmonic number sum_{i=1..n} 1/i^theta.

        Exact for small n; for large n we use the Euler-Maclaurin
        approximation, which keeps setup O(1) and is accurate to far
        better than the sampling noise of any benchmark run.
        """
        if n <= 10000:
            return sum(1.0 / (i ** theta) for i in range(1, n + 1))
        head = sum(1.0 / (i ** theta) for i in range(1, 10001))
        # integral of x^-theta from 10000.5 to n + 0.5
        lo, hi = 10000.5, n + 0.5
        tail = (hi ** (1.0 - theta) - lo ** (1.0 - theta)) / (1.0 - theta)
        return head + tail

    def sample(self) -> int:
        """Return the next zipf-distributed integer in ``[0, n)``."""
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.n * ((self._eta * u - self._eta + 1.0) ** self._alpha))

    def __call__(self) -> int:
        return self.sample()


class ScrambledZipfGenerator(ZipfGenerator):
    """Zipf sampling with popularity spread over the key space by hashing.

    YCSB's ``ScrambledZipfianGenerator``: the *rank* is zipfian but the
    hot items are scattered uniformly across ``[0, n)`` instead of being
    clustered at the low ids, which matters when keys map to contiguous
    data-structure regions.
    """

    _FNV_OFFSET = 0xCBF29CE484222325
    _FNV_PRIME = 0x100000001B3

    def sample(self) -> int:
        rank = super().sample()
        h = self._FNV_OFFSET
        for _ in range(8):
            h ^= rank & 0xFF
            h = (h * self._FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
            rank >>= 8
        return h % self.n


def estimate_skew(samples: list, top_fraction: float = 0.01) -> float:
    """Return the fraction of samples landing in the hottest keys.

    Diagnostic helper used by tests to check that the generator is in
    fact "highly skewed": for zipf(0.99) roughly half the accesses hit
    the top 1% of keys once n is large.
    """
    if not samples:
        return 0.0
    counts: dict = {}
    for s in samples:
        counts[s] = counts.get(s, 0) + 1
    ranked = sorted(counts.values(), reverse=True)
    k = max(1, int(math.ceil(len(counts) * top_fraction)))
    return sum(ranked[:k]) / len(samples)
