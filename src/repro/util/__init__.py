"""Shared utilities: binary encoding helpers and workload distributions."""

from repro.util.encoding import (
    pack_u16,
    pack_u32,
    pack_u64,
    unpack_u16,
    unpack_u32,
    unpack_u64,
    encode_bytes,
    decode_bytes,
    encode_str,
    decode_str,
)
from repro.util.zipf import ZipfGenerator

__all__ = [
    "pack_u16",
    "pack_u32",
    "pack_u64",
    "unpack_u16",
    "unpack_u32",
    "unpack_u64",
    "encode_bytes",
    "decode_bytes",
    "encode_str",
    "decode_str",
    "ZipfGenerator",
]
