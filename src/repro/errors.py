"""Exception hierarchy for the Tango/CORFU reproduction.

Every error raised by the library derives from :class:`ReproError` so that
applications can catch library failures with a single ``except`` clause
while still being able to distinguish the individual failure modes that
the paper's protocols care about (write-once conflicts, sealed epochs,
trimmed offsets, transaction aborts, and so on).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# CORFU (shared log) errors
# ---------------------------------------------------------------------------


class CorfuError(ReproError):
    """Base class for shared-log errors."""


class WrittenError(CorfuError):
    """The target offset was already written (write-once violation).

    Chain replication uses this error to arbitrate races: the first client
    to complete a write to the head of the chain wins, and every other
    client gets :class:`WrittenError` and must retry with a fresh offset.
    """

    def __init__(self, offset: int) -> None:
        super().__init__(f"offset {offset} is already written")
        self.offset = offset


class UnwrittenError(CorfuError):
    """The target offset has not been written yet."""

    def __init__(self, offset: int) -> None:
        super().__init__(f"offset {offset} is unwritten")
        self.offset = offset


class TrimmedError(CorfuError):
    """The target offset was trimmed and its contents reclaimed."""

    def __init__(self, offset: int) -> None:
        super().__init__(f"offset {offset} was trimmed")
        self.offset = offset


class SealedError(CorfuError):
    """The storage unit (or sequencer) was sealed at a higher epoch.

    Clients receiving this error must fetch the latest projection and
    retry against the new configuration (paper section 5, "Failure
    Handling").
    """

    def __init__(self, epoch: int) -> None:
        super().__init__(f"sealed at epoch {epoch}; refresh projection")
        self.epoch = epoch


class WrongEpochError(CorfuError):
    """A request carried a stale epoch number."""

    def __init__(self, expected: int, got: int) -> None:
        super().__init__(f"request epoch {got} != current epoch {expected}")
        self.expected = expected
        self.got = got


class StaleGrantError(CorfuError):
    """A vector grant lost its race and must be retried from scratch.

    Raised by the sequencer's ``commit_group`` when some touched
    stream's newest recorded offset already exceeds the grant's offset:
    a concurrent single-shard append was granted on the owning shard
    after our reservation, so recording the grant would break the
    stream's append-order/offset-order agreement. The client abandons
    the grant (its reserved offsets become ordinary holes for ``fill``)
    and retries with a fresh reservation vector.
    """

    def __init__(self, offset: int) -> None:
        super().__init__(
            f"vector grant at offset {offset} is stale; retry with a fresh grant"
        )
        self.offset = offset


class NodeDownError(CorfuError):
    """The target node has crashed or is unreachable."""

    def __init__(self, node: str) -> None:
        super().__init__(f"node {node} is down")
        self.node = node


class RpcTimeout(CorfuError, TimeoutError):
    """An RPC to a node produced no response within the timeout.

    Raised by the transport layer (:mod:`repro.net`) when a request or
    its response is dropped, delayed past the deadline, or blocked by a
    network partition. A timeout is *ambiguous*: the server may or may
    not have executed the call, so only idempotent (or
    idempotence-compensated) operations may be blindly retried. See
    the idempotence table in ``docs/PROTOCOLS.md``.
    """

    def __init__(self, node: str, op: str = "") -> None:
        what = f"rpc {op} to {node}" if op else f"rpc to {node}"
        super().__init__(f"{what} timed out")
        self.node = node
        self.op = op


class RetriesExhaustedError(CorfuError):
    """A client operation gave up after its bounded retry budget.

    The client protocol retries through append races, sealed epochs,
    dead nodes, and RPC timeouts; if the budget runs out the cluster is
    effectively unreachable from this client. Carries the operation
    name and the last error observed so operators can tell a partition
    from a reconfiguration storm.
    """

    def __init__(self, op: str, attempts: int, last: str = "") -> None:
        detail = f" (last error: {last})" if last else ""
        super().__init__(
            f"{op}: retries exhausted after {attempts} attempts{detail}"
        )
        self.op = op
        self.attempts = attempts
        self.last = last


class OutOfSpaceError(CorfuError):
    """The shared log's address space mapping has been exhausted."""


class RemoteCallError(CorfuError):
    """A server returned an error the wire codec could not reconstruct.

    The socket transport ships errors as ``{code, message}`` envelopes;
    codes naming a known library/builtin exception are re-raised as that
    type, and anything else (a server-side bug, a version skew between
    client and server) surfaces as this error so the caller still sees
    the remote message and code.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"remote call failed [{code}]: {message}")
        self.code = code
        self.message = message


# ---------------------------------------------------------------------------
# Stream layer errors
# ---------------------------------------------------------------------------


class StreamError(ReproError):
    """Base class for stream-layer errors."""


class TooManyStreamsError(StreamError):
    """A multiappend targeted more streams than an entry can hold.

    The limit is set at deployment time and translates to per-entry
    storage overhead (paper section 4.1: each extra stream costs 12 bytes
    of header space in a 4KB entry).
    """

    def __init__(self, requested: int, limit: int) -> None:
        super().__init__(
            f"multiappend to {requested} streams exceeds the deployment "
            f"limit of {limit} stream headers per entry"
        )
        self.requested = requested
        self.limit = limit


class UnknownStreamError(StreamError):
    """The stream id is not known to this client."""

    def __init__(self, stream_id: int) -> None:
        super().__init__(f"unknown stream {stream_id}")
        self.stream_id = stream_id


# ---------------------------------------------------------------------------
# Tango runtime errors
# ---------------------------------------------------------------------------


class TangoError(ReproError):
    """Base class for Tango runtime errors."""


class TransactionAborted(TangoError):
    """The optimistic transaction failed conflict validation.

    Carries the offset of the commit record (if one was appended) and a
    human-readable reason listing the first stale read detected.
    """

    def __init__(self, reason: str, commit_offset: int = -1) -> None:
        super().__init__(f"transaction aborted: {reason}")
        self.reason = reason
        self.commit_offset = commit_offset


class NoActiveTransaction(TangoError):
    """EndTX/AbortTX was called with no transaction context open."""


class NestedTransactionError(TangoError):
    """BeginTX was called while a transaction was already open."""


class RemoteReadError(TangoError):
    """A transaction tried to read an object with no local view.

    The paper (section 4.1, case D) explicitly does not support
    generating commit records that involve remote reads; we raise at the
    accessor instead of producing an unresolvable commit record.
    """

    def __init__(self, oid: int) -> None:
        super().__init__(
            f"transactional read of object {oid} which has no local view "
            f"(remote reads at the generating client are unsupported)"
        )
        self.oid = oid


class ObjectExistsError(TangoError):
    """An object with this OID or name is already registered."""


class UnknownObjectError(TangoError):
    """No object with this OID or name is known."""


# ---------------------------------------------------------------------------
# Application-level errors (TangoZK / TangoBK / HDFS)
# ---------------------------------------------------------------------------


class ZKError(ReproError):
    """Base class for TangoZK errors (mirrors ZooKeeper's KeeperException)."""


class NoNodeError(ZKError):
    """The znode does not exist."""


class NodeExistsError(ZKError):
    """The znode already exists."""


class NotEmptyError(ZKError):
    """The znode has children and cannot be deleted."""


class BadVersionError(ZKError):
    """The expected znode version did not match."""


class LedgerError(ReproError):
    """Base class for TangoBK ledger errors."""


class LedgerClosedError(LedgerError):
    """The ledger has been closed and no longer accepts writes."""


class LedgerFencedError(LedgerError):
    """Another writer fenced this ledger (single-writer violation)."""
