"""Dynamic hosting registry: who hosts which objects.

Paper section 4.1, on deciding when a transaction needs a decision
record: "In our current implementation, we require developers to mark
objects as requiring decision records ... This solution is simple but
conservative and static; a more dynamic scheme might involve tracking
the set of objects hosted by each client."

:class:`HostingRegistry` is that dynamic scheme — itself a Tango object
(of course), mapping client names to the sets of object ids they host.
A generating client consults it at EndTX: a decision record is needed
exactly when some *other* client hosts one of the transaction's
write-set objects without hosting its entire read set.

The registry view used for the check may be slightly stale (a client
may have registered a new view moments ago). Staleness is safe: a
missed decision record degrades to the runtime's reconstruction
fallback, which is correct, just slower. Attach a registry to a runtime
with :meth:`TangoRuntime.use_hosting_registry
<repro.tango.runtime.TangoRuntime.use_hosting_registry>`.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Sequence, Set, Tuple

from repro.tango.object import TangoObject


class HostingRegistry(TangoObject):
    """client name -> set of hosted object ids."""

    def __init__(self, runtime, oid: int, host_view: bool = True) -> None:
        self._hosts: Dict[str, Set[int]] = {}
        super().__init__(runtime, oid, host_view=host_view)

    # -- upcalls -----------------------------------------------------------

    def apply(self, payload: bytes, offset: int) -> None:
        op = json.loads(payload.decode("utf-8"))
        kind = op["op"]
        client = op["client"]
        if kind == "announce":
            self._hosts.setdefault(client, set()).update(op["oids"])
        elif kind == "retract":
            hosted = self._hosts.get(client)
            if hosted is not None:
                hosted.difference_update(op["oids"])
                if not hosted:
                    del self._hosts[client]
        elif kind == "leave":
            self._hosts.pop(client, None)
        else:  # pragma: no cover - corrupt log entries
            raise ValueError(f"unknown hosting op {kind!r}")

    def get_checkpoint(self) -> bytes:
        return json.dumps(
            {client: sorted(oids) for client, oids in self._hosts.items()}
        ).encode("utf-8")

    def load_checkpoint(self, state: bytes) -> None:
        raw = json.loads(state.decode("utf-8"))
        self._hosts = {client: set(oids) for client, oids in raw.items()}

    # -- mutators ------------------------------------------------------------

    def announce(self, client: str, oids: Iterable[int]) -> None:
        """Record that *client* hosts views of *oids*."""
        op = json.dumps({"op": "announce", "client": client, "oids": sorted(oids)})
        self._update(op.encode("utf-8"), key=client.encode("utf-8"))

    def retract(self, client: str, oids: Iterable[int]) -> None:
        """Record that *client* dropped views of *oids*."""
        op = json.dumps({"op": "retract", "client": client, "oids": sorted(oids)})
        self._update(op.encode("utf-8"), key=client.encode("utf-8"))

    def leave(self, client: str) -> None:
        """Remove a departed client entirely."""
        op = json.dumps({"op": "leave", "client": client})
        self._update(op.encode("utf-8"), key=client.encode("utf-8"))

    # -- accessors -------------------------------------------------------------

    def hosted_by(self, client: str) -> Tuple[int, ...]:
        self._query(key=client.encode("utf-8"))
        return tuple(sorted(self._hosts.get(client, ())))

    def clients(self) -> Tuple[str, ...]:
        self._query()
        return tuple(sorted(self._hosts))

    def needs_decision(
        self,
        read_oids: Sequence[int],
        write_oids: Sequence[int],
        generating_client: str,
    ) -> bool:
        """True if some consumer cannot validate this transaction.

        "a client executing a transaction must insert a decision record
        ... if there's some other client in the system that hosts an
        object in its write set but not all the objects in its read
        set" (section 4.1). Uses the local view without forcing a sync;
        see the module docstring on why staleness is safe.
        """
        reads = set(read_oids)
        # Deliberately unsynced: called from EndTX under the play lock,
        # and staleness only degrades to the reconstruction fallback
        # (see module docstring).
        for client, hosted in self._hosts.items():  # tangolint: disable=TL002
            if client == generating_client:
                continue
            if any(oid in hosted for oid in write_oids) and not reads <= hosted:
                return True
        return False
