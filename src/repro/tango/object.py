"""The Tango object base class.

Paper section 3.1: a Tango object has three components — an in-memory
*view*, a mandatory *apply* upcall that is the only code allowed to
mutate the view, and an external interface of mutators and accessors
that delegate to the runtime's ``update_helper`` and ``query_helper``.

Subclasses implement:

- :meth:`apply` (mandatory) — change the view from one update record;
- :meth:`get_checkpoint` / :meth:`load_checkpoint` (optional) — opaque
  snapshot support for the ``checkpoint``/``forget`` machinery;
- class attribute :attr:`needs_decision_record` — the paper's static
  marking for objects that may appear in a transaction's read set while
  some client hosts the write set but not this object (section 4.1).

A ``TangoObject`` can also be opened *without a local view*
(``host_view=False``): mutators still work (remote writes, section 4.1
case A — e.g. a producer appending to a queue it never reads) but
accessors raise, since there is no view to read.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TangoError


class TangoObject:
    """Base class for all replicated data structures."""

    #: Paper section 4.1: mark objects whose transactions need decision
    #: records because some client hosts a write-set object but not this
    #: (read-set) object.
    needs_decision_record = False

    def __init__(self, runtime, oid: int, host_view: bool = True) -> None:
        self.oid = oid
        self._runtime = runtime
        self._hosted = host_view
        if host_view:
            runtime.register_object(self)

    # -- upcalls (implemented by subclasses) -----------------------------------

    def apply(self, payload: bytes, offset: int) -> None:
        """Mandatory upcall: fold one update record into the view.

        "The view must be modified only by the Tango runtime via this
        apply upcall, and not by application threads executing arbitrary
        methods of the object."

        *offset* is the position in the shared log at which the update
        became visible; objects may store it instead of the value to act
        as indices over log-structured storage (section 3.1,
        "Durability").
        """
        raise NotImplementedError

    def get_checkpoint(self) -> bytes:
        """Optional upcall: serialize the view for a checkpoint record."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement checkpoints"
        )

    def load_checkpoint(self, state: bytes) -> None:
        """Optional upcall: replace the view with checkpointed state."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement checkpoints"
        )

    def get_checkpoint_delta(self, keys) -> bytes:
        """Optional upcall: serialize only the sub-state behind *keys*.

        *keys* is the set of fine-grained version keys the runtime saw
        change since this object's last checkpoint. A read-only
        accessor: implementing it (together with
        :meth:`load_checkpoint_delta`) opts the object into incremental
        :class:`~repro.tango.records.DeltaCheckpointRecord` emission.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement delta checkpoints"
        )

    def load_checkpoint_delta(self, state: bytes) -> None:
        """Optional upcall: fold one delta-checkpoint state into the view.

        Called after :meth:`load_checkpoint` installed the chain's full
        base, once per delta record oldest-first.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement delta checkpoints"
        )

    # -- helpers for subclasses --------------------------------------------------

    @property
    def is_hosted(self) -> bool:
        """True if this client maintains a local view of the object."""
        return self._hosted

    def _update(self, payload: bytes, key: Optional[bytes] = None) -> None:
        """Mutator plumbing: send an opaque update record to the runtime."""
        self._runtime.update_helper(self.oid, payload, key=key)

    def sync_to(self, offset: int) -> None:
        """Play this view forward only up to log position *offset*.

        Time travel (section 3.1, "History"): a fresh view synced to a
        prefix of the history is the object's state as of that offset.
        Inspect it with :meth:`get_checkpoint` (calling accessors would
        re-sync the view to the current tail). Syncing several objects
        to the same offset yields a consistent cross-object snapshot
        (section 3.2) — the basis for coordinated rollback and remote
        mirroring.
        """
        if not self._hosted:
            raise TangoError(
                f"object {self.oid} has no local view on this client"
            )
        self._runtime.query_helper(self.oid, upto=offset)

    def _query(self, key: Optional[bytes] = None) -> None:
        """Accessor plumbing: synchronize the view (or record a TX read).

        Accessors call this first and then return "an arbitrary function
        over the state of the object".
        """
        if not self._hosted:
            raise TangoError(
                f"object {self.oid} has no local view on this client; "
                f"accessors require host_view=True"
            )
        self._runtime.query_helper(self.oid, key=key)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mode = "hosted" if self._hosted else "write-only"
        return f"<{type(self).__name__} oid={self.oid} {mode}>"
