"""Version tracking for optimistic concurrency control.

Paper section 3.2, "Versioning": the version of an object is "simply the
last offset in the shared log that modified the object". A single
version per object "can result in an unnecessarily high abort rate for
large data structures"; objects may therefore pass opaque *key*
parameters to the helper calls, "specifying which disjoint sub-region of
the data structure is being accessed and thus allowing for fine-grained
versioning within the object. Internally, Tango then tracks the latest
version of each key within an object."

Consistency rules between the two granularities:

- a **keyed write** bumps the key version and the whole-object version,
  so coarse readers conflict with it;
- an **unkeyed write** may touch any part of the object, so it must
  invalidate *every* keyed read; we track the last unkeyed modification
  per object separately for this.

Memory-bounded mode adds *eviction below a horizon*: once the log prefix
below an offset is trimmed (checkpoint-and-forget), keyed entries whose
version sits below that offset can be dropped. Dropped keys leave a
compact digest in an :class:`EvictedKeySet` plus a per-object *floor*
(horizon - 1): a later lookup of an evicted key conservatively reports
the floor — an upper bound on its true version — so a transaction that
read the key *before* the horizon may abort spuriously, but a stale read
can never slip through. Per-object and unkeyed versions are one integer
each and are never evicted.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

from repro.tango.records import NO_VERSION

_DIGEST_SIZE = 8


class EvictedKeySet:
    """A compact, exact membership set of evicted version keys.

    Keys are stored as sorted fixed-width blake2b digests in one bytes
    blob — 8 bytes per distinct key, no per-entry object overhead, and a
    deterministic serialization (:meth:`to_bytes`) that checkpoints can
    carry so reloaded views inherit the same conservative floors.
    """

    __slots__ = ("_blob",)

    def __init__(self, blob: bytes = b"") -> None:
        if len(blob) % _DIGEST_SIZE:
            raise ValueError("evicted-key blob length not a digest multiple")
        self._blob = blob

    @staticmethod
    def _digest(key: bytes) -> bytes:
        return hashlib.blake2b(key, digest_size=_DIGEST_SIZE).digest()

    def add_many(self, keys: List[bytes]) -> None:
        if not keys:
            return
        records = {
            self._blob[i : i + _DIGEST_SIZE]
            for i in range(0, len(self._blob), _DIGEST_SIZE)
        }
        records.update(self._digest(k) for k in keys)
        self._blob = b"".join(sorted(records))

    def merge_bytes(self, blob: bytes) -> None:
        if len(blob) % _DIGEST_SIZE:
            raise ValueError("evicted-key blob length not a digest multiple")
        records = {
            self._blob[i : i + _DIGEST_SIZE]
            for i in range(0, len(self._blob), _DIGEST_SIZE)
        }
        records.update(
            blob[i : i + _DIGEST_SIZE] for i in range(0, len(blob), _DIGEST_SIZE)
        )
        self._blob = b"".join(sorted(records))

    def __contains__(self, key: bytes) -> bool:
        digest = self._digest(key)
        lo, hi = 0, len(self._blob) // _DIGEST_SIZE
        while lo < hi:
            mid = (lo + hi) // 2
            rec = self._blob[mid * _DIGEST_SIZE : (mid + 1) * _DIGEST_SIZE]
            if rec < digest:
                lo = mid + 1
            elif rec > digest:
                hi = mid
            else:
                return True
        return False

    def __len__(self) -> int:
        return len(self._blob) // _DIGEST_SIZE

    def to_bytes(self) -> bytes:
        return self._blob

    @classmethod
    def from_bytes(cls, blob: bytes) -> "EvictedKeySet":
        return cls(blob)


class VersionTable:
    """Per-object and per-(object, key) last-modified offsets."""

    def __init__(self) -> None:
        self._object_versions: Dict[int, int] = {}
        self._unkeyed_versions: Dict[int, int] = {}
        self._key_versions: Dict[Tuple[int, bytes], int] = {}
        # Memory-bounded mode: per-object eviction floor and the digest
        # set of keys whose exact versions were dropped below it.
        self._floors: Dict[int, int] = {}
        self._evicted: Dict[int, EvictedKeySet] = {}

    def bump(self, oid: int, offset: int, key: Optional[bytes] = None) -> None:
        """Record that *offset* modified *oid* (and *key* within it)."""
        if offset > self._object_versions.get(oid, NO_VERSION):
            self._object_versions[oid] = offset
        if key is None:
            if offset > self._unkeyed_versions.get(oid, NO_VERSION):
                self._unkeyed_versions[oid] = offset
        else:
            k = (oid, key)
            if offset > self._key_versions.get(k, NO_VERSION):
                self._key_versions[k] = offset

    def get(self, oid: int, key: Optional[bytes] = None) -> int:
        """Current version of *oid* (or of *key* within *oid*).

        The keyed version folds in unkeyed modifications, since those
        may have touched the key's sub-region.
        """
        if key is None:
            return self._object_versions.get(oid, NO_VERSION)
        keyed = self._key_versions.get((oid, key))
        if keyed is None:
            keyed = NO_VERSION
            evicted = self._evicted.get(oid)
            if evicted is not None and key in evicted:
                # The exact version was evicted below the floor; report
                # the floor — an upper bound, so conflict checks err
                # toward aborting, never toward missing a conflict.
                keyed = self._floors.get(oid, NO_VERSION)
        return max(keyed, self._unkeyed_versions.get(oid, NO_VERSION))

    def is_stale(self, oid: int, key: Optional[bytes], read_version: int) -> bool:
        """True if the location was modified after *read_version*."""
        return self.get(oid, key) > read_version

    def snapshot_keys(self, oid: int) -> Tuple[Tuple[bytes, int], ...]:
        """All key versions for *oid* (for checkpoint records)."""
        return tuple(
            (key, version)
            for (obj, key), version in sorted(self._key_versions.items())
            if obj == oid
        )

    def snapshot_unkeyed(self, oid: int) -> int:
        """Last unkeyed modification offset for *oid*."""
        return self._unkeyed_versions.get(oid, NO_VERSION)

    def load_checkpoint(
        self,
        oid: int,
        object_version: int,
        key_versions: Tuple[Tuple[bytes, int], ...],
        unkeyed_version: int = NO_VERSION,
        version_floor: int = NO_VERSION,
        evicted_filter: bytes = b"",
    ) -> None:
        """Install version state recovered from a checkpoint record.

        All pieces are carried exactly in the checkpoint so that a
        reloaded view makes the same commit/abort decisions as a view
        built from the full history; when the writer's table had evicted
        keys, the floor and filter make the reloaded view exactly as
        conservative as the writer was.
        """
        if object_version != NO_VERSION:
            self._object_versions[oid] = object_version
        if unkeyed_version != NO_VERSION:
            self._unkeyed_versions[oid] = unkeyed_version
        for key, version in key_versions:
            self._key_versions[(oid, key)] = version
        if evicted_filter:
            self._evicted.setdefault(oid, EvictedKeySet()).merge_bytes(
                evicted_filter
            )
            self._floors[oid] = max(
                self._floors.get(oid, NO_VERSION), version_floor
            )

    # -- memory-bounded mode ---------------------------------------------------

    def evict_below(self, horizon: int) -> int:
        """Drop keyed entries versioned below *horizon*; returns the count.

        Safe after the log prefix below *horizon* is trimmed: dropped
        keys answer lookups with the per-object floor (``horizon - 1``)
        via the evicted-key set, which over-approximates their true
        version. Object/unkeyed versions (one int each) are kept.
        """
        if horizon <= 0:
            return 0
        doomed: Dict[int, List[bytes]] = {}
        for (oid, key), version in self._key_versions.items():
            if version < horizon:
                doomed.setdefault(oid, []).append(key)
        count = 0
        for oid, keys in doomed.items():
            for key in keys:
                del self._key_versions[(oid, key)]
            count += len(keys)
            self._evicted.setdefault(oid, EvictedKeySet()).add_many(keys)
            self._floors[oid] = max(self._floors.get(oid, NO_VERSION), horizon - 1)
        return count

    def eviction_snapshot(self, oid: int) -> Tuple[int, bytes]:
        """(floor, serialized evicted-key set) for checkpoint records."""
        evicted = self._evicted.get(oid)
        if evicted is None or not len(evicted):
            return NO_VERSION, b""
        return self._floors.get(oid, NO_VERSION), evicted.to_bytes()

    def resident_stats(self) -> Dict[str, int]:
        """Entry counts for memory reporting."""
        return {
            "objects": len(self._object_versions),
            "keyed_entries": len(self._key_versions),
            "evicted_keys": sum(len(e) for e in self._evicted.values()),
            "evicted_bytes": sum(
                len(e.to_bytes()) for e in self._evicted.values()
            ),
        }

    def drop_object(self, oid: int) -> None:
        """Forget all version state for *oid* (object deregistration)."""
        self._object_versions.pop(oid, None)
        self._unkeyed_versions.pop(oid, None)
        self._floors.pop(oid, None)
        self._evicted.pop(oid, None)
        for k in [k for k in self._key_versions if k[0] == oid]:
            del self._key_versions[k]
