"""Version tracking for optimistic concurrency control.

Paper section 3.2, "Versioning": the version of an object is "simply the
last offset in the shared log that modified the object". A single
version per object "can result in an unnecessarily high abort rate for
large data structures"; objects may therefore pass opaque *key*
parameters to the helper calls, "specifying which disjoint sub-region of
the data structure is being accessed and thus allowing for fine-grained
versioning within the object. Internally, Tango then tracks the latest
version of each key within an object."

Consistency rules between the two granularities:

- a **keyed write** bumps the key version and the whole-object version,
  so coarse readers conflict with it;
- an **unkeyed write** may touch any part of the object, so it must
  invalidate *every* keyed read; we track the last unkeyed modification
  per object separately for this.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.tango.records import NO_VERSION


class VersionTable:
    """Per-object and per-(object, key) last-modified offsets."""

    def __init__(self) -> None:
        self._object_versions: Dict[int, int] = {}
        self._unkeyed_versions: Dict[int, int] = {}
        self._key_versions: Dict[Tuple[int, bytes], int] = {}

    def bump(self, oid: int, offset: int, key: Optional[bytes] = None) -> None:
        """Record that *offset* modified *oid* (and *key* within it)."""
        if offset > self._object_versions.get(oid, NO_VERSION):
            self._object_versions[oid] = offset
        if key is None:
            if offset > self._unkeyed_versions.get(oid, NO_VERSION):
                self._unkeyed_versions[oid] = offset
        else:
            k = (oid, key)
            if offset > self._key_versions.get(k, NO_VERSION):
                self._key_versions[k] = offset

    def get(self, oid: int, key: Optional[bytes] = None) -> int:
        """Current version of *oid* (or of *key* within *oid*).

        The keyed version folds in unkeyed modifications, since those
        may have touched the key's sub-region.
        """
        if key is None:
            return self._object_versions.get(oid, NO_VERSION)
        return max(
            self._key_versions.get((oid, key), NO_VERSION),
            self._unkeyed_versions.get(oid, NO_VERSION),
        )

    def is_stale(self, oid: int, key: Optional[bytes], read_version: int) -> bool:
        """True if the location was modified after *read_version*."""
        return self.get(oid, key) > read_version

    def snapshot_keys(self, oid: int) -> Tuple[Tuple[bytes, int], ...]:
        """All key versions for *oid* (for checkpoint records)."""
        return tuple(
            (key, version)
            for (obj, key), version in sorted(self._key_versions.items())
            if obj == oid
        )

    def snapshot_unkeyed(self, oid: int) -> int:
        """Last unkeyed modification offset for *oid*."""
        return self._unkeyed_versions.get(oid, NO_VERSION)

    def load_checkpoint(
        self,
        oid: int,
        object_version: int,
        key_versions: Tuple[Tuple[bytes, int], ...],
        unkeyed_version: int = NO_VERSION,
    ) -> None:
        """Install version state recovered from a checkpoint record.

        All three pieces are carried exactly in the checkpoint so that a
        reloaded view makes the same commit/abort decisions as a view
        built from the full history.
        """
        if object_version != NO_VERSION:
            self._object_versions[oid] = object_version
        if unkeyed_version != NO_VERSION:
            self._unkeyed_versions[oid] = unkeyed_version
        for key, version in key_versions:
            self._key_versions[(oid, key)] = version

    def drop_object(self, oid: int) -> None:
        """Forget all version state for *oid* (object deregistration)."""
        self._object_versions.pop(oid, None)
        self._unkeyed_versions.pop(oid, None)
        for k in [k for k in self._key_versions if k[0] == oid]:
            del self._key_versions[k]
