"""The Tango runtime.

One :class:`TangoRuntime` instance corresponds to one *client* in the
paper: an application server hosting local views of some subset of the
system's objects. Runtimes never communicate with each other directly;
all interaction flows through the shared log (section 3).

Core mechanics implemented here:

- **state machine replication** (section 3.1): mutators funnel opaque
  update records through ``update_helper``; accessors call
  ``query_helper``, which places a marker at the current tail of the
  object's stream and plays the view forward to it, giving
  linearizability.
- **merged playback**: the runtime plays all hosted streams in global
  offset order, so when a multi-object commit record is encountered at
  position X, every involved hosted stream has already been played to X
  — the "consistent snapshot of all the objects touched by the
  transaction as of X" of section 4.1.
- **transactions** (sections 3.2, 4.1): optimistic concurrency control
  with speculative updates, commit records carrying versioned read
  sets, deterministic commit/abort decisions at every consumer, and
  decision records for consumers that host a write-set object but not
  the whole read set.
- **checkpoints and forget** (section 3.1): object-provided snapshots
  stored in the log, and GC driven by per-object forget offsets.
"""

from __future__ import annotations

import itertools
import threading
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import (
    NestedTransactionError,
    NoActiveTransaction,
    ObjectExistsError,
    RemoteReadError,
    ReproError,
    TangoError,
    TransactionAborted,
    UnknownObjectError,
)
from repro.streams.stream import PLAYBACK_PREFETCH, StreamClient
from repro.tango.records import (
    NO_TX,
    NO_VERSION,
    CheckpointRecord,
    CommitRecord,
    DecisionRecord,
    DeltaCheckpointRecord,
    Record,
    UpdateRecord,
    decode_records,
    encode_records,
)
from repro.tango.transaction import PendingTx, TxContext
from repro.tango.versioning import VersionTable
from repro.util.ident import default_source

#: How many no-progress sync+play rounds end_tx tolerates while waiting
#: for another transaction's decision record before giving up. In the
#: in-process deployment a missing decision means its generator crashed
#: mid-protocol; the application resolves via publish_decision.
_MAX_DECISION_WAIT_ROUNDS = 3

#: Longest delta-checkpoint chain (deltas since the last full
#: checkpoint) the runtime will emit before forcing a full one. Loading
#: a chain costs one random read per link, so this bounds reload cost.
MAX_DELTA_CHAIN = 8


class _GroupCommitPolicy:
    """Adaptive group-commit sizing shared by a runtime's batch scopes.

    Section 6 fixes the batch at 4 records per entry; this policy
    starts there and adapts to what each flush observes:

    - *payload pressure* — a flush that had to split into per-record
      entries (the coalesced payload outgrew one entry) halves the
      batch, so the next scope coalesces what actually fits;
    - *in-flight pressure* — retries/timeouts observed at the transport
      during the flush halve it, shedding latency when the write path
      is struggling;
    - a full batch that flushed as a single entry using at most half
      the payload capacity over a quiet network doubles it (capped),
      amortizing more records per sequencer grant and chain write.

    One policy per runtime, shared by every scope (that is what makes
    it adaptive across scopes); its lock is a leaf taken only for the
    size read-modify-write, never across an RPC (TL012).
    """

    START = 4
    FLOOR = 1
    CEIL = 64

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._size = self.START

    @property
    def size(self) -> int:
        with self._lock:
            return self._size

    def observe(
        self, batched: int, split: bool, pressure: int,
        payload_bytes: int, capacity: int,
    ) -> int:
        """Record one flush's observations; return the adapted size."""
        with self._lock:
            if split or pressure > 0:
                self._size = max(self.FLOOR, self._size // 2)
            elif batched >= self._size and payload_bytes * 2 <= capacity:
                self._size = min(self.CEIL, self._size * 2)
            return self._size


class TangoRuntime:
    """Per-client runtime multiplexing Tango objects over one shared log.

    Args:
        streams: the stream client for this client's log connection.
            Passing a :class:`~repro.corfu.cluster.CorfuCluster` is also
            accepted as a convenience (a fresh client + stream client is
            created).
        client_id: unique 31-bit client identifier used to mint
            transaction ids; drawn from the process identity source
            when omitted (seedable via
            :func:`repro.util.ident.seed_identities` so replay tests
            can pin transaction ids).
        name: diagnostic label.
        memory_budget: byte budget for client-side caches
            (memory-bounded mode). When set, the stream client's entry
            cache evicts LRU entries past the budget, and a prefix trim
            of the log evicts version-table entries below the trim
            horizon (replaced by a conservative per-object floor, so
            conflict checks can only get stricter, never wrong).
    """

    def __init__(
        self,
        streams,
        client_id: Optional[int] = None,
        name: str = "client",
        memory_budget: Optional[int] = None,
    ) -> None:
        if not isinstance(streams, StreamClient):
            # Convenience: accept a CorfuCluster directly.
            streams = StreamClient(streams.client())
        self._streams: StreamClient = streams
        self.name = name
        if client_id is None:
            client_id = default_source().client_id()
        self._client_id = client_id & 0x7FFFFFFF
        self._tx_seq = itertools.count(1)
        self._tls = threading.local()

        self._objects: Dict[int, object] = {}  # oid -> TangoObject
        self._versions = VersionTable()
        # Serializes playback and registration across application
        # threads. Transaction contexts and batch scopes are
        # thread-local (the paper's model: many application threads per
        # client, one runtime); the lock makes the shared view/version
        # state safe under them. Reentrant because end_tx plays the log
        # while already holding it.
        self._play_lock = threading.RLock()
        # Consuming-side transaction state.
        self._pending: Dict[int, PendingTx] = {}
        self._decided: Dict[int, bool] = {}
        self._awaiting: Dict[int, PendingTx] = {}
        self._blocked_streams: Set[int] = set()
        self._deferred: List[Tuple[int, object, Tuple[int, ...]]] = []
        # Commit records we generated with decision_expected, retained so
        # the decision can be (re)published after a crash of a peer.
        self._own_commits: Dict[int, Tuple[int, CommitRecord]] = {}
        # (offset, record) for every commit this client has decided, so
        # that publish_decision can reconstruct the decision's streams.
        self._pending_records: Dict[int, Tuple[int, CommitRecord]] = {}
        # Highest log offset processed by merged playback.
        self._watermark = NO_VERSION
        # Optional dynamic decision-record scheme (section 4.1).
        self._hosting_registry = None
        # Adaptive group-commit sizing, shared across batch scopes.
        self._batch_policy = _GroupCommitPolicy()
        # True while a speculative batch scope is open (guarded by
        # _play_lock): speculation assumes no concurrent playback, so
        # overlapping speculative scopes are refused.
        self._speculating = False

        # Delta-checkpoint state: the version keys modified since each
        # object's last checkpoint (what a delta has to carry), objects
        # that saw an unkeyed update since then (forces a full
        # checkpoint — a delta cannot express "anything may have
        # changed"), and per-object (last checkpoint offset, chain
        # depth) so deltas know their base.
        self._dirty_keys: Dict[int, Set[bytes]] = {}
        self._dirty_full: Set[int] = set()
        self._checkpoint_chains: Dict[int, Tuple[int, int]] = {}
        self.max_delta_chain = MAX_DELTA_CHAIN

        # Memory-bounded mode.
        if memory_budget is not None and memory_budget <= 0:
            raise ValueError("memory_budget must be a positive byte count")
        self._memory_budget = memory_budget
        if memory_budget is not None:
            self._streams.set_cache_budget(memory_budget)
        self._streams.corfu.subscribe_trim(self._on_prefix_trim)

        # Statistics (read by tests and the benchmark harness).
        self.stats = {
            "commits": 0,
            "aborts": 0,
            "applied_updates": 0,
            "decisions_published": 0,
            "read_only_commits": 0,
            "full_checkpoints": 0,
            "delta_checkpoints": 0,
            "evicted_versions": 0,
            "speculative_commits": 0,
            "speculative_rollbacks": 0,
        }
        # Observability hooks: event name -> callbacks (see subscribe).
        self._subscribers: Dict[str, List] = {}

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    _EVENTS = ("apply", "commit", "abort", "decision", "checkpoint")

    def subscribe(self, event: str, callback) -> None:
        """Register an observability callback.

        Events and their callback payloads (a single dict argument):

        - ``apply``   — ``{oid, offset, key}``: an update reached a view;
        - ``commit`` / ``abort`` — ``{tx_id, offset}``: a transaction this
          client *decided* (its own or a consumed one);
        - ``decision`` — ``{tx_id, committed}``: a decision record this
          client published;
        - ``checkpoint`` — ``{oid, offset, covers, delta}`` (*delta* is
          True for an incremental checkpoint record).

        Callbacks run synchronously on the playback path; keep them
        cheap (metrics counters, trace buffers). Exceptions propagate —
        a broken metrics hook should fail loudly in development, and
        production hooks should guard themselves.
        """
        if event not in self._EVENTS:
            raise ValueError(
                f"unknown event {event!r}; expected one of {self._EVENTS}"
            )
        self._subscribers.setdefault(event, []).append(callback)

    def _emit(self, event: str, payload: dict) -> None:
        for callback in self._subscribers.get(event, ()):
            callback(payload)

    # ------------------------------------------------------------------
    # object registration
    # ------------------------------------------------------------------

    def register_object(self, obj, from_checkpoint: bool = True) -> None:
        """Host a local view of *obj*, catching it up with the log.

        If the object's stream contains a checkpoint record, the newest
        one is loaded and playback resumes above its cover point —
        mandatory when the log below has been trimmed. A stream
        registered after the runtime has already played other streams is
        caught up to the current watermark before joining merged
        playback.
        """
        oid = obj.oid
        with self._play_lock:
            if oid in self._objects:
                raise ObjectExistsError(f"object {oid} already registered")
            if self._awaiting:
                raise TangoError(
                    "cannot register a new object while transactions are "
                    "awaiting decision records; retry after playback drains"
                )
            self._objects[oid] = obj
            self._streams.open_stream(oid)
            self._streams.sync(oid)
            if from_checkpoint:
                self._maybe_load_checkpoint(oid, obj)
            if self._watermark != NO_VERSION:
                self._catch_up(oid, self._watermark)

    def deregister_object(self, oid: int) -> None:
        """Drop the local view of *oid* (the log is unaffected).

        The stream iterator rewinds so that a future registration
        replays the stream from the start (or its newest checkpoint)
        into the fresh view.
        """
        with self._play_lock:
            self._objects.pop(oid, None)
            self._versions.drop_object(oid)
            self._dirty_keys.pop(oid, None)
            self._dirty_full.discard(oid)
            self._checkpoint_chains.pop(oid, None)
            if self._streams.is_open(oid):
                self._streams.reset(oid)

    def is_hosted(self, oid: int) -> bool:
        with self._play_lock:
            return oid in self._objects

    def get_object(self, oid: int):
        """The hosted view of *oid*, or None."""
        with self._play_lock:
            return self._objects.get(oid)

    def hosted_oids(self) -> Tuple[int, ...]:
        with self._play_lock:
            return tuple(self._objects)

    def _maybe_load_checkpoint(self, oid: int, obj) -> None:
        """Find and load the newest checkpoint record in *oid*'s stream.

        Scans newest-first, prefetching the candidate offsets in small
        batched reads (the checkpoint is usually within the last few
        entries, so a full-stream batch would over-read). A delta
        checkpoint is loaded by walking its ``base_offset`` chain back
        to a full checkpoint; a chain that cannot be reconstructed
        (trimmed base, hole) is skipped and the scan continues with
        older candidates.
        """
        offsets = list(reversed(self._streams.known_offsets(oid)))
        for i, offset in enumerate(offsets):
            if i % PLAYBACK_PREFETCH == 0:
                self._streams._prefetch(offsets[i : i + PLAYBACK_PREFETCH])
            entry = self._streams.fetch(offset)
            if entry.is_junk:
                continue
            for record in decode_records(entry.payload):
                if (
                    isinstance(record, (CheckpointRecord, DeltaCheckpointRecord))
                    and record.oid == oid
                ):
                    if self._load_checkpoint_chain(oid, obj, offset, record):
                        return

    def _load_checkpoint_chain(self, oid: int, obj, offset: int, newest) -> bool:
        """Install *newest* (plus its delta chain, if any) into *obj*.

        Returns False when the chain cannot be reconstructed — the base
        was trimmed, lost to a hole, or the chain is malformed — in
        which case the caller falls back to older candidates.
        """
        chain = [newest]
        cursor = newest
        prev_offset = offset
        while isinstance(cursor, DeltaCheckpointRecord):
            # Bases sit strictly earlier in the log; anything else is a
            # malformed (or cyclic) chain.
            if cursor.base_offset >= prev_offset:
                return False
            try:
                entry = self._streams.fetch(cursor.base_offset)
            except ReproError:
                return False
            if entry.is_junk:
                return False
            base = None
            for record in decode_records(entry.payload):
                if (
                    isinstance(record, (CheckpointRecord, DeltaCheckpointRecord))
                    and record.oid == oid
                ):
                    base = record
                    break
            if base is None:
                return False
            chain.append(base)
            prev_offset = cursor.base_offset
            cursor = base
        full = chain[-1]
        obj.load_checkpoint(full.state)
        self._versions.load_checkpoint(
            oid,
            full.object_version,
            full.key_versions,
            full.unkeyed_version,
            full.version_floor,
            full.evicted_filter,
        )
        for delta in reversed(chain[:-1]):
            obj.load_checkpoint_delta(delta.state)
            self._versions.load_checkpoint(
                oid,
                delta.object_version,
                delta.key_versions,
                delta.unkeyed_version,
                delta.version_floor,
                delta.evicted_filter,
            )
        self._streams.seek(oid, newest.covers_offset)
        depth = newest.depth if isinstance(newest, DeltaCheckpointRecord) else 0
        self._checkpoint_chains[oid] = (offset, depth)
        return True

    # ------------------------------------------------------------------
    # the paper's helper API (Figure 3)
    # ------------------------------------------------------------------

    def update_helper(
        self, oid: int, payload: bytes, key: Optional[bytes] = None
    ) -> Optional[int]:
        """Append an opaque update record for *oid* (the mutator path).

        Outside a transaction the record is appended to the object's
        stream immediately and the log offset is returned. Inside a
        transaction the update is buffered in the context and ``None``
        is returned; it reaches the log at ``EndTX``. Inside a
        :meth:`batch` scope the record is coalesced with its neighbours
        into shared log entries (section 6 batches 4 records per 4KB
        entry) and ``None`` is returned until the batch flushes.

        Writing to an object with no local view is allowed — this is a
        remote write (section 4.1, case A).
        """
        ctx = self._current_tx()
        if ctx is not None:
            ctx.record_update(oid, payload, key)
            return None
        record = UpdateRecord(oid, payload, key, tx_id=NO_TX)
        batch = getattr(self._tls, "batch", None)
        if batch is not None:
            batch.add(record)
            return None
        return self._streams.append(encode_records([record]), (oid,))

    def batch(self, size: Optional[int] = None, speculative: bool = False):
        """Group-commit scope: coalesce updates into shared log entries.

        Section 6: "We use 4KB entries in the CORFU log, with a batch
        size of 4 at each client." Each flushed entry is multiappended
        to the union of its records' streams, so every object's stream
        still sees every one of its updates, in order. Accessors called
        inside the scope flush first, preserving read-your-writes.

        With *size* (a fixed record count) the scope flushes every
        *size* records, as before. The default (``size=None``) adapts:
        the threshold starts at the paper's 4 and grows or shrinks with
        observed payload pressure and in-flight latency (see
        :class:`_GroupCommitPolicy`), shared across this runtime's
        scopes.

        With ``speculative=True`` (opt-in), updates to hosted objects
        are applied to the local view *immediately* — accessors inside
        the scope read the speculative state without flushing or log
        I/O — and every flush reconciles against the log: if no foreign
        entry interleaved with the speculated objects, the speculation
        is committed in place (versions bumped at the real offsets);
        otherwise the touched objects are rolled back to their
        pre-speculation checkpoints and replayed from the log in order.
        Objects must implement ``get_checkpoint``/``load_checkpoint``;
        views that store apply offsets should not opt in unless a
        rollback re-applying them with real offsets is acceptable. If
        the scope body raises, speculative applies are rolled back
        along with the discarded records (see API.md). Speculation
        assumes a single playback driver: concurrent speculative
        scopes are refused, and transactions cannot open inside one.

        ::

            with runtime.batch():          # adaptive group commit
                for item in items:
                    tango_list.append(item)
        """
        return _BatchScope(self, size, speculative)

    def _flush_batch(self) -> None:
        batch = getattr(self._tls, "batch", None)
        if batch is not None:
            batch.flush()

    def query_helper(
        self, oid: int, key: Optional[bytes] = None, upto: Optional[int] = None
    ) -> None:
        """Synchronize the view of *oid* (the accessor path).

        Outside a transaction: places a marker at the stream's current
        tail and plays all hosted streams forward to it (linearizable
        read). With *upto*, playback stops at that log offset instead,
        which instantiates a historical view (section 3.1, "History").

        Inside a transaction: performs no log I/O; records the read (and
        its current version) in the transaction's read set. Reading an
        object with no local view raises
        :class:`~repro.errors.RemoteReadError` (section 4.1, case D).
        """
        ctx = self._current_tx()
        if ctx is not None:
            with self._play_lock:
                if oid not in self._objects:
                    raise RemoteReadError(oid)
                ctx.record_read(oid, key, self._versions.get(oid, key))
            return
        batch = getattr(self._tls, "batch", None)
        if batch is not None and batch.speculative:
            # Speculative scope: accessors read the locally applied
            # (speculative) view without flushing or syncing — that is
            # the point of speculation. Conflicts with foreign log
            # entries are detected (and rolled back) at flush time.
            with self._play_lock:
                if oid not in self._objects:
                    raise UnknownObjectError(f"object {oid} has no local view")
            return
        # Read-your-writes inside a batch scope: flush buffered updates
        # before placing the read marker.
        self._flush_batch()
        with self._play_lock:
            if oid not in self._objects:
                raise UnknownObjectError(f"object {oid} has no local view")
            markers = self._streams.sync_many(self.hosted_oids())
            marker = markers.get(oid, NO_VERSION)
            if upto is not None:
                marker = min(marker, upto) if marker != NO_VERSION else upto
            if marker == NO_VERSION:
                return
            self._play_until(marker)

    # ------------------------------------------------------------------
    # transactions (generating side)
    # ------------------------------------------------------------------

    def _current_tx(self) -> Optional[TxContext]:
        return getattr(self._tls, "tx", None)

    def begin_tx(self) -> None:
        """Open a transaction context in thread-local storage."""
        if self._current_tx() is not None:
            raise NestedTransactionError("transaction already open")
        batch = getattr(self._tls, "batch", None)
        if batch is not None and batch.speculative:
            # A transaction's end_tx plays the log forward, which would
            # interleave foreign entries under live speculative state.
            raise TangoError(
                "cannot open a transaction inside a speculative batch scope"
            )
        tx_id = (self._client_id << 32) | (next(self._tx_seq) & 0xFFFFFFFF)
        self._tls.tx = TxContext(tx_id)

    def abort_tx(self) -> None:
        """Discard the open transaction without touching the log."""
        if self._current_tx() is None:
            raise NoActiveTransaction("no transaction open")
        self._tls.tx = None

    def end_tx(self, allow_stale: bool = False) -> bool:
        """Close the transaction; returns True on commit, False on abort.

        Fast paths (section 3.2): a read-only transaction appends
        nothing — it plays the log to the current tail and validates
        locally (or, with ``allow_stale``, validates against the stale
        snapshot without touching the log). A write-only transaction
        appends its commit record and commits immediately, without
        playing the log forward.
        """
        ctx = self._current_tx()
        if ctx is None:
            raise NoActiveTransaction("no transaction open")
        self._tls.tx = None
        if ctx.is_read_only:
            return self._end_read_only(ctx, allow_stale)
        if ctx.is_write_only:
            with self._play_lock:
                self._append_commit(ctx)
                self.stats["commits"] += 1
            return True
        return self._end_read_write(ctx)

    def _end_read_only(self, ctx: TxContext, allow_stale: bool) -> bool:
        if not ctx.read_set:
            return True  # empty transaction
        with self._play_lock:
            if not allow_stale:
                markers = self._streams.sync_many(self.hosted_oids())
                live = [m for m in markers.values() if m != NO_VERSION]
                if live:
                    self._play_until(max(live))
            ok = not any(
                self._versions.is_stale(e.oid, e.key, e.version)
                for e in ctx.read_set
            )
            self.stats["commits" if ok else "aborts"] += 1
            if ok:
                self.stats["read_only_commits"] += 1
        return ok

    def _end_read_write(self, ctx: TxContext) -> bool:
        with self._play_lock:
            return self._end_read_write_locked(ctx)

    def _end_read_write_locked(self, ctx: TxContext) -> bool:
        commit_offset, record = self._append_commit(ctx)
        # Play forward to the commit point; processing the commit record
        # (we host the whole read set, by construction) decides it.
        self._streams.sync_many(self.hosted_oids())
        self._play_until(commit_offset)
        outcome = self._decided.get(ctx.tx_id)
        # Our commit record may sit behind an earlier transaction that is
        # parked awaiting its decision record (its commit shares one of
        # our streams). The decision is coming from that transaction's
        # generator; keep playing forward until it lands.
        stuck_rounds = 0
        while outcome is None and stuck_rounds < _MAX_DECISION_WAIT_ROUNDS:
            watermark = self._watermark
            markers = self._streams.sync_many(self.hosted_oids())
            live = [m for m in markers.values() if m != NO_VERSION]
            if live:
                self._play_until(max(live))
            outcome = self._decided.get(ctx.tx_id)
            if self._watermark == watermark and not self._deferred:
                stuck_rounds += 1
        if outcome is None:
            raise TangoError(
                f"transaction {ctx.tx_id} undecided after playback to its "
                f"commit record; a preceding commit record is awaiting a "
                f"decision that never arrived (crashed generator?) — "
                f"resolve it with publish_decision/force_abort"
            )
        if record.decision_expected:
            self._own_commits[ctx.tx_id] = (commit_offset, record)
            self._append_decision(ctx.tx_id, outcome, record)
        self.stats["commits" if outcome else "aborts"] += 1
        return outcome

    def use_hosting_registry(self, registry) -> None:
        """Enable dynamic decision-record insertion (section 4.1).

        With a :class:`~repro.tango.hosting.HostingRegistry` attached,
        EndTX consults the registered hosting sets instead of relying
        solely on static ``needs_decision_record`` marks: a decision
        record is appended exactly when some other client hosts a
        write-set object without the whole read set. Static marks still
        force decisions (the union is taken), so the dynamic scheme can
        only add precision, never lose safety.
        """
        self._hosting_registry = registry

    def _append_commit(self, ctx: TxContext) -> Tuple[int, CommitRecord]:
        """Flush buffered updates and append the commit record.

        Small transactions inline their updates in the commit record
        (one append). Larger ones first flush speculative update
        entries to the written objects' streams, then append a commit
        record referencing them by tx id.
        """
        decision_expected = any(
            getattr(self._objects.get(e.oid), "needs_decision_record", False)
            for e in ctx.read_set
        )
        registry = getattr(self, "_hosting_registry", None)
        if registry is not None and not decision_expected:
            decision_expected = registry.needs_decision(
                [e.oid for e in ctx.read_set], ctx.write_oids, self.name
            )
        streams = ctx.involved_oids()
        inline = CommitRecord(
            ctx.tx_id,
            tuple(ctx.read_set),
            tuple(ctx.write_oids),
            tuple(ctx.updates),
            decision_expected=decision_expected,
        )
        payload = encode_records([inline])
        if len(payload) <= self._streams.corfu.max_payload:
            offset = self._streams.append(payload, streams)
            return offset, inline
        # Oversized: speculative flush, one entry per update.
        for update in ctx.updates:
            self._streams.append(encode_records([update]), (update.oid,))
        record = CommitRecord(
            ctx.tx_id,
            tuple(ctx.read_set),
            tuple(ctx.write_oids),
            (),
            decision_expected=decision_expected,
        )
        offset = self._streams.append(encode_records([record]), streams)
        return offset, record

    def _append_decision(
        self, tx_id: int, outcome: bool, record: CommitRecord
    ) -> None:
        streams = []
        for entry in record.read_set:
            if entry.oid not in streams:
                streams.append(entry.oid)
        for oid in record.write_oids:
            if oid not in streams:
                streams.append(oid)
        decision = DecisionRecord(tx_id, outcome)
        self._streams.append(encode_records([decision]), tuple(streams))
        self.stats["decisions_published"] += 1
        if self._subscribers:
            self._emit("decision", {"tx_id": tx_id, "committed": outcome})

    def transaction(self, retries: int = 0, allow_stale: bool = False):
        """Context manager sugar around BeginTX/EndTX.

        Raises :class:`~repro.errors.TransactionAborted` when validation
        fails after exhausting *retries*. Note that retrying re-executes
        the ``with`` body only when used through :meth:`run_transaction`;
        the bare context manager performs a single attempt.
        """
        return _TxScope(self, allow_stale)

    def run_transaction(self, fn, retries: int = 16, allow_stale: bool = False):
        """Run ``fn()`` inside a transaction, retrying on aborts.

        Returns ``fn``'s result from the committing attempt.

        Transactional reads observe the local view without playing the
        log forward, so application preconditions can fail spuriously on
        a stale view (e.g. a znode that "does not exist" only because
        the view lags). If the body raises and the reads it made turn
        out to be stale, the exception is treated as an abort and the
        attempt is retried against the refreshed view; an exception over
        fresh reads is a genuine application error and propagates.
        """
        for _ in range(retries + 1):
            self.begin_tx()
            try:
                result = fn()
            except (KeyboardInterrupt, SystemExit):
                self.abort_tx()
                raise
            except BaseException:
                ctx = self._current_tx()
                self._tls.tx = None
                if ctx is not None and self._reads_went_stale(ctx):
                    continue
                raise
            if self.end_tx(allow_stale=allow_stale):
                return result
        raise TransactionAborted(f"still conflicting after {retries + 1} attempts")

    def _reads_went_stale(self, ctx: TxContext) -> bool:
        """Play the log forward; report whether *ctx*'s reads were stale."""
        if not ctx.read_set:
            return False
        with self._play_lock:
            markers = self._streams.sync_many(self.hosted_oids())
            live = [m for m in markers.values() if m != NO_VERSION]
            if live:
                self._play_until(max(live))
            return any(
                self._versions.is_stale(e.oid, e.key, e.version)
                for e in ctx.read_set
            )

    # ------------------------------------------------------------------
    # orphan handling (section 3.2 / 4.1, "Failure Handling")
    # ------------------------------------------------------------------

    def force_abort(self, tx_id: int, oids: Sequence[int]) -> int:
        """Terminate an orphaned transaction with a dummy aborting commit.

        "A Tango client that crashes in the middle of a transaction can
        leave behind orphaned data in the log without a corresponding
        commit record; other clients can complete the transaction by
        inserting a dummy commit record designed to abort."
        """
        record = CommitRecord(
            tx_id, (), tuple(oids), (), forced_abort=True
        )
        return self._streams.append(encode_records([record]), tuple(oids))

    def publish_decision(self, tx_id: int) -> bool:
        """Append a decision record for a transaction this client decided.

        Any client that hosts the read set (and therefore decided the
        commit record locally) may do this when the generating client
        crashed between its commit and decision records. Returns False
        if this client has not decided the transaction.
        """
        with self._play_lock:
            outcome = self._decided.get(tx_id)
            if outcome is None:
                return False
            pending = self._pending_records.get(tx_id)
            if pending is None:
                return False
            _offset, record = pending
            self._append_decision(tx_id, outcome, record)
        return True

    # ------------------------------------------------------------------
    # checkpoint / forget (section 3.1)
    # ------------------------------------------------------------------

    def checkpoint(self, oid: int, mode: str = "auto") -> int:
        """Store a snapshot of *oid*'s view in the log; returns its offset.

        *mode* selects between full and incremental snapshots:

        - ``"full"``  — a :class:`CheckpointRecord` carrying the whole
          view, always valid;
        - ``"delta"`` — a :class:`DeltaCheckpointRecord` carrying only
          the sub-state behind the version keys modified since the last
          checkpoint, chained to it via ``base_offset``. Requires the
          object to implement the delta upcalls, a base checkpoint this
          session, and no unkeyed update since it (raises
          :class:`~repro.errors.TangoError` otherwise);
        - ``"auto"``  — delta when all of the above hold and the chain
          is shorter than :data:`MAX_DELTA_CHAIN`, else full.
        """
        if mode not in ("auto", "full", "delta"):
            raise ValueError(f"unknown checkpoint mode {mode!r}")
        with self._play_lock:
            obj = self._objects.get(oid)
            if obj is None:
                raise UnknownObjectError(f"object {oid} has no local view")
            return self._checkpoint_locked(oid, obj, mode)

    @staticmethod
    def _supports_delta(obj) -> bool:
        """True when *obj* overrides both delta-checkpoint upcalls."""
        from repro.tango.object import TangoObject

        get_fn = getattr(type(obj), "get_checkpoint_delta", None)
        load_fn = getattr(type(obj), "load_checkpoint_delta", None)
        return (
            get_fn is not None
            and load_fn is not None
            and get_fn is not TangoObject.get_checkpoint_delta
            and load_fn is not TangoObject.load_checkpoint_delta
        )

    def _checkpoint_locked(self, oid: int, obj, mode: str = "auto") -> int:
        chain = self._checkpoint_chains.get(oid)
        use_delta = False
        if mode == "delta":
            if not self._supports_delta(obj):
                raise TangoError(
                    f"object {oid} does not implement delta checkpoints"
                )
            if chain is None:
                raise TangoError(
                    f"object {oid} has no base checkpoint to delta against; "
                    f"take a full checkpoint first"
                )
            if oid in self._dirty_full:
                raise TangoError(
                    f"object {oid} saw an unkeyed update since its last "
                    f"checkpoint; a delta cannot express it — take a full "
                    f"checkpoint"
                )
            use_delta = True
        elif mode == "auto":
            use_delta = (
                self._supports_delta(obj)
                and chain is not None
                and chain[1] < self.max_delta_chain
                and oid not in self._dirty_full
            )
        covers = self._streams.position(oid)
        floor, evicted = self._versions.eviction_snapshot(oid)
        if use_delta:
            assert chain is not None
            keys = sorted(self._dirty_keys.get(oid, ()))
            record: Record = DeltaCheckpointRecord(
                oid,
                chain[0],
                covers,
                self._versions.get(oid),
                tuple((k, self._versions.get(oid, k)) for k in keys),
                obj.get_checkpoint_delta(frozenset(keys)),
                unkeyed_version=self._versions.snapshot_unkeyed(oid),
                version_floor=floor,
                evicted_filter=evicted,
                depth=chain[1] + 1,
            )
        else:
            record = CheckpointRecord(
                oid,
                covers,
                self._versions.get(oid),
                self._versions.snapshot_keys(oid),
                obj.get_checkpoint(),
                unkeyed_version=self._versions.snapshot_unkeyed(oid),
                version_floor=floor,
                evicted_filter=evicted,
            )
        offset = self._streams.append(encode_records([record]), (oid,))
        depth = chain[1] + 1 if use_delta else 0
        self._checkpoint_chains[oid] = (offset, depth)
        self._dirty_keys.pop(oid, None)
        if not use_delta:
            self._dirty_full.discard(oid)
        self.stats["delta_checkpoints" if use_delta else "full_checkpoints"] += 1
        if self._subscribers:
            self._emit(
                "checkpoint",
                {
                    "oid": oid,
                    "offset": offset,
                    "covers": covers,
                    "delta": use_delta,
                },
            )
        return offset

    def temporary_view(self, cls, oid: int, **kwargs):
        """Materialize a view of *oid* for the duration of a scope.

        The paper's section 4.1 (case D) rejects transactional remote
        reads, listing as one alternative "recreating the view locally
        at the beginning of the transaction, which can be too
        expensive". This context manager is that alternative, made
        explicit: the object is registered (catching up from its
        stream, through checkpoints where available), participates in
        transactions as a fully hosted view — conflict detection
        included — and is deregistered on exit.

        ::

            with runtime.temporary_view(TangoMap, remote_oid) as prices:
                def tx():
                    if prices.get("widget") < 100:
                        orders.append("widget")
                runtime.run_transaction(tx)

        The cost is what the paper warns about: a full stream replay
        (or checkpoint load) at entry. Use it for occasional
        cross-partition reads, not hot paths.
        """
        return _TemporaryView(self, cls, oid, kwargs)

    def checkpoint_and_forget(self, oid: int, directory) -> int:
        """Checkpoint *oid* and register its cover as the forget offset.

        Plays the object to the current tail first, so the checkpoint
        covers every entry of the stream below its own position; history
        below the cover becomes reclaimable by ``directory.gc()``. To
        unpin the log fully, call this for every object and for the
        directory itself *last* (its checkpoint must cover the forget
        records just appended). Returns the checkpoint's log offset.

        Always takes a *full* checkpoint: a delta's base chain lives
        below the new checkpoint in the log, exactly where a later GC
        pass is entitled to trim.
        """
        self.query_helper(oid)
        covers = self._streams.position(oid)
        offset = self.checkpoint(oid, mode="full")
        directory.forget(oid, covers)
        return offset

    # ------------------------------------------------------------------
    # memory-bounded mode
    # ------------------------------------------------------------------

    def _on_prefix_trim(self, offset: int, is_prefix: bool) -> None:
        """Trim subscriber: release client memory the log just reclaimed.

        Registered with :meth:`CorfuClient.subscribe_trim`; active only
        in memory-bounded mode. Once the prefix below *offset* is
        trimmed, exact version-table entries below it are replaced by
        the conservative eviction floor, and decided-transaction
        bookkeeping for commit records below the horizon is dropped
        (their entries can never be replayed again — they read as
        junk).
        """
        if not is_prefix or self._memory_budget is None:
            return
        with self._play_lock:
            self.stats["evicted_versions"] += self._versions.evict_below(offset)
            doomed = [
                tx_id
                for tx_id, (off, _record) in self._pending_records.items()
                if off < offset
            ]
            for tx_id in doomed:
                del self._pending_records[tx_id]
                self._decided.pop(tx_id, None)
                self._own_commits.pop(tx_id, None)

    # ------------------------------------------------------------------
    # merged playback
    # ------------------------------------------------------------------

    def _play_until(self, upto: int) -> None:
        """Apply every pending entry with offset <= *upto*, in log order.

        Streams currently blocked behind an awaited decision record do
        not participate; their entries are deferred and drained when the
        decision arrives.
        """
        while True:
            best: Optional[int] = None
            for sid in self._objects:
                offset = self._streams.peek_offset(sid)
                if offset is None or offset > upto:
                    continue
                if best is None or offset < best:
                    best = offset
            if best is None:
                break
            delivering = []
            for sid in self._objects:
                if self._streams.peek_offset(sid) == best:
                    self._streams.readnext(sid)
                    delivering.append(sid)
            entry = self._streams.fetch(best)
            self._process_entry(best, entry, tuple(delivering))
            if best > self._watermark:
                self._watermark = best

    def _flush_speculative(
        self, batch: "_UpdateBatch"
    ) -> List[Tuple[int, Tuple[UpdateRecord, ...]]]:
        """Flush a speculative batch and reconcile it with the log.

        The batch's records were already applied to the hosted views
        (optimistically, with provisional offsets). After the durable
        append, the log decides whether the speculation was right:

        - if no foreign entry interleaved with a speculated object's
          stream below our last flushed offset, the speculation IS the
          replay — commit it in place by advancing the iterators past
          our own entries (without re-applying them) and bumping
          versions at the real offsets;
        - otherwise roll the speculated objects back to their
          pre-speculation checkpoints, rewind their iterators, and
          replay the log in order — our entries included, exactly once.

        Foreign entries touching only non-speculated objects are played
        normally either way (their order relative to the speculation is
        independent). Runs under the play lock, like end_tx.
        """
        with self._play_lock:
            flushed = batch._flush_records()
            if not flushed:
                return flushed
            spec_oids = set(batch._snapshots)
            our = {offset for offset, _ in flushed}
            last = max(our)
            self._streams.sync_many(self.hosted_oids())
            conflict = False
            while True:
                best: Optional[int] = None
                for sid in self._objects:
                    offset = self._streams.peek_offset(sid)
                    if offset is None or offset > last:
                        continue
                    if best is None or offset < best:
                        best = offset
                if best is None:
                    break
                delivering = [
                    sid for sid in self._objects
                    if self._streams.peek_offset(sid) == best
                ]
                if best in our:
                    # Our own entry: the speculative apply already
                    # mutated the views; just consume it.
                    for sid in delivering:
                        self._streams.readnext(sid)
                    if best > self._watermark:
                        self._watermark = best
                    continue
                entry = self._streams.fetch(best)
                if not entry.is_junk and any(
                    sid in spec_oids for sid in delivering
                ):
                    # A foreign entry interleaved below our flushed
                    # offsets on a speculated stream: the speculation
                    # applied out of log order. Stop (iterators still
                    # point at this entry) and roll back.
                    conflict = True
                    break
                for sid in delivering:
                    self._streams.readnext(sid)
                self._process_entry(best, entry, tuple(delivering))
                if best > self._watermark:
                    self._watermark = best
            if conflict:
                for oid, (snap, pos) in sorted(batch._snapshots.items()):
                    obj = self._objects.get(oid)
                    if obj is not None:
                        obj.load_checkpoint(snap)
                        self._streams.seek(oid, pos)
                batch._snapshots.clear()
                self.stats["speculative_rollbacks"] += 1
                self._play_until(last)
                return flushed
            # Speculation committed: the local state already equals the
            # replay; record versions and bookkeeping at real offsets.
            for offset, records in flushed:
                for record in records:
                    if record.oid not in self._objects:
                        continue
                    self._versions.bump(record.oid, offset, record.key)
                    if record.key is None:
                        self._dirty_full.add(record.oid)
                    else:
                        self._dirty_keys.setdefault(
                            record.oid, set()
                        ).add(record.key)
                    self.stats["applied_updates"] += 1
                    if self._subscribers:
                        self._emit(
                            "apply",
                            {
                                "oid": record.oid,
                                "offset": offset,
                                "key": record.key,
                            },
                        )
            batch._snapshots.clear()
            self.stats["speculative_commits"] += 1
            return flushed

    def _process_entry(
        self, offset: int, entry, scope: Tuple[int, ...]
    ) -> None:
        """Dispatch one log entry's records for the objects in *scope*."""
        if entry.is_junk:
            return
        records = decode_records(entry.payload)
        # Decision records for awaited transactions bypass stream
        # blocking — they are the unblocking events.
        for record in records:
            if isinstance(record, DecisionRecord) and record.tx_id in self._awaiting:
                self._resolve_awaited(record)
        if any(sid in self._blocked_streams for sid in scope):
            self._deferred.append((offset, entry, scope))
            return
        for record in records:
            self._dispatch(offset, record, scope)

    def _dispatch(self, offset: int, record: Record, scope: Tuple[int, ...]) -> None:
        if isinstance(record, UpdateRecord):
            if record.is_speculative:
                pending = self._pending.setdefault(
                    record.tx_id, PendingTx(record.tx_id)
                )
                pending.speculative.append((offset, record))
            elif record.oid in scope:
                self._apply_update(offset, record)
        elif isinstance(record, CommitRecord):
            self._process_commit(offset, record, scope)
        elif isinstance(record, DecisionRecord):
            # Handled by the bypass when awaited; otherwise this client
            # already decided locally (or never saw the commit) — ignore.
            pass
        elif isinstance(record, (CheckpointRecord, DeltaCheckpointRecord)):
            # Checkpoints are consumed only by the registration path.
            pass
        else:  # pragma: no cover - future-proofing
            raise TangoError(f"unknown record type {type(record).__name__}")

    def _apply_update(
        self, offset: int, record: UpdateRecord, version_offset: Optional[int] = None
    ) -> None:
        """Apply one update to its view.

        *offset* is where the update's data lives (what indexed views
        store); *version_offset* is where it became visible (what OCC
        compares against) — they differ only for speculative updates,
        whose data precedes their commit record in the log.
        """
        obj = self._objects.get(record.oid)
        if obj is None:
            return
        obj.apply(record.payload, offset)
        self._versions.bump(
            record.oid,
            offset if version_offset is None else version_offset,
            record.key,
        )
        if record.key is None:
            self._dirty_full.add(record.oid)
        else:
            self._dirty_keys.setdefault(record.oid, set()).add(record.key)
        self.stats["applied_updates"] += 1
        if self._subscribers:
            self._emit(
                "apply",
                {"oid": record.oid, "offset": offset, "key": record.key},
            )

    def _process_commit(
        self, offset: int, record: CommitRecord, scope: Tuple[int, ...]
    ) -> None:
        tx_id = record.tx_id
        if tx_id in self._decided:
            # Re-encounter during late-stream catch-up: apply only the
            # newly scoped objects' updates.
            self._finalize_tx(offset, record, self._decided[tx_id], scope)
            return
        if record.forced_abort:
            outcome = False
        elif all(e.oid in self._objects for e in record.read_set):
            outcome = not any(
                self._versions.is_stale(e.oid, e.key, e.version)
                for e in record.read_set
            )
        elif record.decision_expected:
            self._park_for_decision(offset, record, scope)
            return
        else:
            # Last-resort path (paper section 4.1, "Failure Handling"):
            # "any client in the system can reconstruct local views of
            # each object in the read set synced up to the commit offset
            # and then check for conflicts." We reconstruct version
            # tables, which is all a conflict check needs.
            outcome = self._decide_by_reconstruction(offset, record, depth=0)
        self._decided[tx_id] = outcome
        self._pending_records[tx_id] = (offset, record)
        if self._subscribers:
            self._emit(
                "commit" if outcome else "abort",
                {"tx_id": tx_id, "offset": offset},
            )
        self._finalize_tx(offset, record, outcome, scope)

    def _park_for_decision(
        self, offset: int, record: CommitRecord, scope: Tuple[int, ...]
    ) -> None:
        """Hold the involved streams until the decision record arrives."""
        pending = self._pending.setdefault(record.tx_id, PendingTx(record.tx_id))
        pending.commit_offset = offset
        pending.commit_record = record
        self._awaiting[record.tx_id] = pending
        involved = set(e.oid for e in record.read_set) | set(record.write_oids)
        self._blocked_streams.update(involved & set(self._objects))

    def _resolve_awaited(self, decision: DecisionRecord) -> None:
        pending = self._awaiting.pop(decision.tx_id, None)
        if pending is None:
            return
        record = pending.commit_record
        offset = pending.commit_offset
        self._decided[decision.tx_id] = decision.committed
        involved = set(e.oid for e in record.read_set) | set(record.write_oids)
        self._blocked_streams -= involved
        self._finalize_tx(
            offset, record, decision.committed, tuple(self._objects)
        )
        self._drain_deferred()

    def _drain_deferred(self) -> None:
        """Re-run deferred entries now that streams were unblocked."""
        deferred, self._deferred = self._deferred, []
        for offset, entry, scope in deferred:
            self._process_entry(offset, entry, scope)

    def _finalize_tx(
        self,
        commit_offset: int,
        record: CommitRecord,
        outcome: bool,
        scope: Tuple[int, ...],
    ) -> None:
        """Apply (or discard) a decided transaction's buffered updates.

        All of a transaction's writes become visible at the commit
        record's position — its updates carry ``commit_offset`` as their
        version, on every client.
        """
        pending = self._pending.pop(record.tx_id, None)
        if not outcome:
            return
        scoped = set(scope)
        if pending is not None:
            for spec_offset, update in pending.speculative:
                if update.oid in scoped:
                    self._apply_update(
                        spec_offset, update, version_offset=commit_offset
                    )
        for update in record.inline_updates:
            if update.oid in scoped:
                self._apply_update(commit_offset, update)

    # ------------------------------------------------------------------
    # decision by reconstruction (section 4.1, last-resort fallback)
    # ------------------------------------------------------------------

    _MAX_RECONSTRUCTION_DEPTH = 4

    def _decide_by_reconstruction(
        self, commit_offset: int, record: CommitRecord, depth: int
    ) -> bool:
        """Decide a commit record by rebuilding read-set version state.

        For every object in the read set, replay its stream up to (but
        excluding) the commit record and track versions; then run the
        ordinary staleness check. Deterministic on every client, since
        it reads only the shared history.
        """
        if depth > self._MAX_RECONSTRUCTION_DEPTH:
            raise TangoError(
                f"reconstruction for tx {record.tx_id} exceeded depth "
                f"{self._MAX_RECONSTRUCTION_DEPTH}: deeply nested "
                f"undecidable commit records; mark read-set objects "
                f"with needs_decision_record"
            )
        if record.forced_abort:
            return False
        tables: Dict[int, VersionTable] = {}
        for entry in record.read_set:
            if entry.oid not in tables:
                tables[entry.oid] = self._reconstruct_versions(
                    entry.oid, commit_offset, depth
                )
        return not any(
            tables[e.oid].is_stale(e.oid, e.key, e.version)
            for e in record.read_set
        )

    def _reconstruct_versions(
        self, oid: int, upto: int, depth: int
    ) -> VersionTable:
        """Version table of *oid* as of log offset *upto* (exclusive)."""
        self._streams.open_stream(oid)
        self._streams.sync(oid)
        table = VersionTable()
        pending: Dict[int, List[Tuple[int, UpdateRecord]]] = {}
        for offset in self._streams.known_offsets(oid):
            if offset >= upto:
                break
            entry = self._streams.fetch(offset)
            if entry.is_junk:
                continue
            for record in decode_records(entry.payload):
                if isinstance(record, UpdateRecord):
                    if record.oid != oid:
                        continue
                    if record.is_speculative:
                        pending.setdefault(record.tx_id, []).append(
                            (offset, record)
                        )
                    else:
                        table.bump(oid, offset, record.key)
                elif isinstance(record, CommitRecord):
                    outcome = self._decided.get(record.tx_id)
                    if outcome is None:
                        outcome = self._reconstructed_outcome(
                            oid, offset, record, table, depth
                        )
                        self._decided[record.tx_id] = outcome
                        self._pending_records[record.tx_id] = (offset, record)
                    if not outcome:
                        pending.pop(record.tx_id, None)
                        continue
                    for _spec, update in pending.pop(record.tx_id, []):
                        table.bump(oid, offset, update.key)
                    for update in record.inline_updates:
                        if update.oid == oid:
                            table.bump(oid, offset, update.key)
                elif isinstance(
                    record, (CheckpointRecord, DeltaCheckpointRecord)
                ):
                    # A full checkpoint installs its version state; a
                    # delta overlays only its changed keys — its base
                    # appeared earlier in the same stream, so the replay
                    # already folded the base state in.
                    if record.oid == oid:
                        table.load_checkpoint(
                            oid,
                            record.object_version,
                            record.key_versions,
                            record.unkeyed_version,
                            record.version_floor,
                            record.evicted_filter,
                        )
        return table

    def _reconstructed_outcome(
        self,
        oid: int,
        offset: int,
        record: CommitRecord,
        table: VersionTable,
        depth: int,
    ) -> bool:
        """Outcome of a nested commit record met during reconstruction."""
        if record.forced_abort:
            return False
        if all(e.oid == oid for e in record.read_set):
            return not any(
                table.is_stale(e.oid, e.key, e.version) for e in record.read_set
            )
        if record.decision_expected:
            for _off, entry in self._streams.lookahead(oid, offset):
                if entry.is_junk:
                    continue
                for rec in decode_records(entry.payload):
                    if (
                        isinstance(rec, DecisionRecord)
                        and rec.tx_id == record.tx_id
                    ):
                        return rec.committed
        return self._decide_by_reconstruction(offset, record, depth + 1)

    # ------------------------------------------------------------------
    # late-stream catch-up
    # ------------------------------------------------------------------

    def _catch_up(self, oid: int, upto: int) -> None:
        """Replay *oid*'s stream alone up to the global watermark.

        Commit decisions encountered here are resolved from (in order):
        the local decision cache, a read set confined to this object
        (versions are reconstructed historically during the replay), or
        a decision record found further down the stream.
        """
        while True:
            item = self._streams.readnext(oid, upto=upto)
            if item is None:
                break
            offset, entry = item
            if entry.is_junk:
                continue
            for record in decode_records(entry.payload):
                if isinstance(record, UpdateRecord):
                    if record.is_speculative:
                        pending = self._pending.setdefault(
                            record.tx_id, PendingTx(record.tx_id)
                        )
                        pending.speculative.append((offset, record))
                    elif record.oid == oid:
                        self._apply_update(offset, record)
                elif isinstance(record, CommitRecord):
                    self._catch_up_commit(oid, offset, record)

    def _catch_up_commit(self, oid: int, offset: int, record: CommitRecord) -> None:
        tx_id = record.tx_id
        if tx_id in self._decided:
            self._finalize_tx(offset, record, self._decided[tx_id], (oid,))
            return
        if record.forced_abort:
            outcome = False
        elif all(e.oid == oid for e in record.read_set):
            outcome = not any(
                self._versions.is_stale(e.oid, e.key, e.version)
                for e in record.read_set
            )
        else:
            outcome = self._hunt_decision(oid, offset, tx_id)
            if outcome is None:
                outcome = self._decide_by_reconstruction(offset, record, depth=0)
        self._decided[tx_id] = outcome
        self._pending_records[tx_id] = (offset, record)
        self._finalize_tx(offset, record, outcome, (oid,))

    def _hunt_decision(self, oid: int, offset: int, tx_id: int) -> Optional[bool]:
        """Scan forward in the stream for the transaction's decision record."""
        for _off, entry in self._streams.lookahead(oid, offset):
            if entry.is_junk:
                continue
            for record in decode_records(entry.payload):
                if isinstance(record, DecisionRecord) and record.tx_id == tx_id:
                    return record.committed
        return None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def version_of(self, oid: int, key: Optional[bytes] = None) -> int:
        """Current version (last-modifying offset) of an object or key."""
        return self._versions.get(oid, key)

    def status(self) -> dict:
        """Operational snapshot of this client's runtime.

        Intended for dashboards and debugging: hosted objects, playback
        progress, parked transactions (a growing ``awaiting_decisions``
        means some generator is slow or dead — see
        :meth:`publish_decision`), and the cumulative statistics.
        """
        with self._play_lock:
            return {
                "name": self.name,
                "hosted_oids": sorted(self._objects),
                "watermark": self._watermark,
                "pending_txes": len(self._pending),
                "awaiting_decisions": sorted(self._awaiting),
                "blocked_streams": sorted(self._blocked_streams),
                "deferred_entries": len(self._deferred),
                "decided_txes": len(self._decided),
                "open_transaction": self._current_tx() is not None,
                "stats": dict(self.stats),
                # Per-endpoint transport counters (rpcs, retries,
                # timeouts, duplicates, drops, reordered) for the
                # cluster connection.
                "net": self._streams.corfu.net_stats(),
                # Client- and cluster-side storage accounting; built
                # from in-process state only (no RPCs — status() must
                # stay safe to call from anywhere, including transport
                # fault hooks).
                "store": self._store_status_locked(),
            }

    def _store_status_locked(self) -> dict:
        store: dict = {
            "memory_budget": self._memory_budget,
            "versions": self._versions.resident_stats(),
            "stream_cache": {
                "entries": self._streams.cache_size,
                "resident_bytes": self._streams.resident_bytes(),
            },
            "checkpoint_chains": {
                oid: depth
                for oid, (_off, depth) in sorted(
                    self._checkpoint_chains.items()
                )
            },
        }
        # Segment/compaction accounting lives on the storage units; the
        # in-process cluster aggregates it without issuing RPCs.
        aggregate = getattr(
            getattr(self._streams.corfu, "_cluster", None), "store_status", None
        )
        if callable(aggregate):
            try:
                store["cluster"] = aggregate()
            except ReproError:
                pass  # a sealed/degraded cluster still gets client stats
        return store

    def store_status(self) -> dict:
        """Cluster-wide storage survey over the admin RPC plane.

        Unlike :meth:`status` (in-process state only), this issues one
        ``store_status`` RPC per storage node, reporting segment
        counts, garbage ratios, and compaction counters as the nodes
        themselves see them. Unreachable nodes appear as
        ``{"error": ...}`` entries.
        """
        return self._streams.corfu.store_status()

    @property
    def streams(self) -> StreamClient:
        return self._streams

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<TangoRuntime {self.name} objects={len(self._objects)} "
            f"watermark={self._watermark}>"
        )


class _TemporaryView:
    """Context manager behind :meth:`TangoRuntime.temporary_view`."""

    def __init__(self, runtime: TangoRuntime, cls, oid: int, kwargs) -> None:
        self._runtime = runtime
        self._cls = cls
        self._oid = oid
        self._kwargs = kwargs
        self._obj = None
        self._was_hosted = False

    def __enter__(self):
        existing = self._runtime.get_object(self._oid)
        if existing is not None:
            # Already hosted: hand it out and leave it alone on exit.
            self._was_hosted = True
            self._obj = existing
            return existing
        self._obj = self._cls(self._runtime, self._oid, **self._kwargs)
        return self._obj

    def __exit__(self, exc_type, exc, tb) -> bool:
        if not self._was_hosted:
            self._runtime.deregister_object(self._oid)
        return False


class _UpdateBatch:
    """Accumulates update records and flushes them as shared entries."""

    def __init__(
        self,
        runtime: TangoRuntime,
        size: Optional[int],
        speculative: bool = False,
    ) -> None:
        self._runtime = runtime
        # size=None means adaptive: the threshold tracks the runtime's
        # shared group-commit policy, re-read after every flush.
        self._policy = runtime._batch_policy if size is None else None
        self._size = runtime._batch_policy.size if size is None else size
        self.speculative = speculative
        self._records: List[UpdateRecord] = []
        # oid -> (pre-speculation checkpoint, stream position), taken
        # lazily at each hosted object's first speculative apply.
        self._snapshots: Dict[int, Tuple[bytes, int]] = {}
        self._spec_seq = 0

    def add(self, record: UpdateRecord) -> None:
        if self.speculative:
            self._speculative_apply(record)
        self._records.append(record)
        if len(self._records) >= self._size:
            self.flush()

    def _speculative_apply(self, record: UpdateRecord) -> None:
        runtime = self._runtime
        with runtime._play_lock:
            obj = runtime._objects.get(record.oid)
            if obj is None:
                return  # remote write: buffered only, applied by hosts
            if record.oid not in self._snapshots:
                try:
                    snap = obj.get_checkpoint()
                except NotImplementedError:
                    raise TangoError(
                        f"object {record.oid} does not implement "
                        f"checkpoints; speculative batch scopes need "
                        f"them for rollback"
                    ) from None
                self._snapshots[record.oid] = (
                    snap, runtime._streams.position(record.oid)
                )
            self._spec_seq += 1
            # Provisional apply offset: past everything delivered so
            # far, monotonically increasing within the scope. Replaced
            # by the real offsets at reconcile time (via rollback +
            # replay) if the log disagrees with the speculation.
            obj.apply(record.payload, runtime._watermark + self._spec_seq)

    def flush(self) -> List[Tuple[int, Tuple[UpdateRecord, ...]]]:
        """Flush buffered records; returns ``[(offset, records), ...]``.

        Exception-safe: records leave the buffer only once their append
        has returned, so if an append raises mid-flush (retries
        exhausted, a reconfiguration that cannot complete), everything
        not yet durable is still buffered and a later flush retries it.
        The chunk whose append raised is ambiguous — like any append
        that times out, it may surface in the log anyway — so a retried
        flush delivers at-least-once for that chunk and exactly-once
        for everything behind it (the old code silently dropped both).
        """
        if not self._records:
            return []
        if self.speculative:
            flushed = self._runtime._flush_speculative(self)
        else:
            flushed = self._flush_records()
        self._spec_seq = 0
        return flushed

    def _flush_records(self) -> List[Tuple[int, Tuple[UpdateRecord, ...]]]:
        flushed: List[Tuple[int, Tuple[UpdateRecord, ...]]] = []
        streams_client = self._runtime._streams
        corfu = streams_client.corfu
        limit = corfu.max_payload
        pressure_before = self._net_pressure(corfu)
        batched = len(self._records)
        split = False
        payload_bytes = 0
        while self._records:
            records = self._records
            streams: List[int] = []
            for record in records:
                if record.oid not in streams:
                    streams.append(record.oid)
            payload = encode_records(records)
            if len(payload) <= limit and len(streams) <= corfu.max_streams:
                payload_bytes = len(payload)
                offset = streams_client.append(payload, tuple(streams))
                self._records = []
                flushed.append((offset, tuple(records)))
                break
            # Oversized batch: one entry per record, but runs of records
            # for the same object still share a single sequencer grant
            # (append_batch), so the flush costs one increment RPC per
            # run instead of one per record. The buffer is trimmed only
            # after each run's append returns (exception safety).
            split = True
            j = 1
            while j < len(records) and records[j].oid == records[0].oid:
                j += 1
            run = records[:j]
            if len(run) > 1:
                offsets = streams_client.append_batch(
                    [encode_records([r]) for r in run], (run[0].oid,)
                )
                self._records = records[j:]
                flushed.extend(
                    (off, (r,)) for off, r in zip(offsets, run)
                )
            else:
                offset = streams_client.append(
                    encode_records([run[0]]), (run[0].oid,)
                )
                self._records = records[1:]
                flushed.append((offset, (run[0],)))
        if self._policy is not None:
            pressure = self._net_pressure(corfu) - pressure_before
            self._size = self._policy.observe(
                batched, split, pressure, payload_bytes, limit
            )
        return flushed

    @staticmethod
    def _net_pressure(corfu) -> int:
        """Retries + timeouts across endpoints (the in-flight signal)."""
        total = 0
        for stats in corfu.net_stats().values():
            total += stats["retries"] + stats["timeouts"]
        return total

    def abandon(self) -> None:
        """Discard buffered records; undo speculative local applies.

        The scope body raised (or its exit flush failed): buffered
        records never reach the log, and any hosted view mutated
        speculatively is restored to its pre-speculation checkpoint so
        the local state rejoins the log's history. Records already
        flushed are durable and stay — they were acknowledged.
        """
        self._records = []
        if not self._snapshots:
            return
        runtime = self._runtime
        with runtime._play_lock:
            for oid, (snap, pos) in sorted(self._snapshots.items()):
                obj = runtime._objects.get(oid)
                if obj is not None:
                    obj.load_checkpoint(snap)
                    runtime._streams.seek(oid, pos)
        self._snapshots = {}
        self._spec_seq = 0


class _BatchScope:
    """Context manager installing an update batch in thread-local state.

    Error semantics (documented in API.md): if the scope body raises,
    buffered (unflushed) updates are DISCARDED — none of them reaches
    the log, and no partial entry is appended. Updates flushed earlier
    in the scope (threshold reached, or an accessor's read-your-writes
    flush) are already durable and stay. Speculative local applies of
    discarded records are rolled back.
    """

    def __init__(
        self,
        runtime: TangoRuntime,
        size: Optional[int],
        speculative: bool = False,
    ) -> None:
        self._runtime = runtime
        self._size = size
        self._speculative = speculative

    def __enter__(self) -> "_BatchScope":
        if getattr(self._runtime._tls, "batch", None) is not None:
            raise TangoError("batch scope already open on this thread")
        if self._speculative:
            with self._runtime._play_lock:
                if self._runtime._speculating:
                    raise TangoError(
                        "another speculative batch scope is active"
                    )
                self._runtime._speculating = True
        self._runtime._tls.batch = _UpdateBatch(
            self._runtime, self._size, self._speculative
        )
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        batch = self._runtime._tls.batch
        try:
            if exc_type is None:
                try:
                    batch.flush()
                except BaseException:
                    # The exit flush failed and there is no scope left
                    # to retry in: roll back speculative applies so the
                    # local view rejoins the log, and surface the error
                    # (records already flushed are durable; the rest
                    # are discarded, loudly).
                    batch.abandon()
                    raise
            else:
                batch.abandon()
        finally:
            self._runtime._tls.batch = None
            if self._speculative:
                with self._runtime._play_lock:
                    self._runtime._speculating = False
        return False


class _TxScope:
    """Context manager for a single transaction attempt."""

    def __init__(self, runtime: TangoRuntime, allow_stale: bool) -> None:
        self._runtime = runtime
        self._allow_stale = allow_stale
        self.committed: Optional[bool] = None

    def __enter__(self) -> "_TxScope":
        self._runtime.begin_tx()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._runtime.abort_tx()
            return False
        self.committed = self._runtime.end_tx(allow_stale=self._allow_stale)
        if not self.committed:
            raise TransactionAborted("read set validation failed")
        return False
