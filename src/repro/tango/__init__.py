"""The Tango runtime: replicated data structures over the shared log.

The runtime provides the paper's two helper calls (section 3.1):

- ``update_helper`` — "accepts an opaque buffer from the object and
  appends it to the shared log";
- ``query_helper`` — "reads new entries from the shared log and provides
  them to the object via an apply upcall";

plus transactions (``begin_tx``/``end_tx``, section 3.2/4.1),
checkpoints and ``forget``-driven garbage collection (section 3.1), and
the name directory (section 3.2, "Naming").
"""

from repro.tango.runtime import TangoRuntime
from repro.tango.object import TangoObject
from repro.tango.records import (
    CheckpointRecord,
    CommitRecord,
    DecisionRecord,
    UpdateRecord,
    decode_records,
    encode_records,
)
from repro.tango.versioning import VersionTable, NO_VERSION

__all__ = [
    "TangoRuntime",
    "TangoObject",
    "UpdateRecord",
    "CommitRecord",
    "DecisionRecord",
    "CheckpointRecord",
    "encode_records",
    "decode_records",
    "VersionTable",
    "NO_VERSION",
]
