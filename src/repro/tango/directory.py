"""The Tango object directory (paper section 3.2, "Naming").

"To assign unique OIDs to each object, Tango maintains a directory from
human-readable strings ... to unique integers. This directory is itself
a Tango object with a hard-coded OID. Tango also uses the directory for
safely implementing the forget garbage collection interface in the
presence of multiple objects ... The directory tracks the forget offset
for each object (below which its entries can be reclaimed), and Tango
only trims the shared log below the minimum such offset across all
objects."

OID allocation runs as a transaction serialized on the ``__next_oid``
pseudo-key, so two clients concurrently creating names can never be
handed the same OID: the second committer's read of ``__next_oid`` is
stale and its transaction aborts and retries.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Tuple, Type

from repro.errors import UnknownObjectError
from repro.tango.object import TangoObject
from repro.tango.runtime import TangoRuntime

#: The directory's hard-coded object id.
DIRECTORY_OID = 0

#: First OID handed out to applications (0 is the directory itself).
FIRST_APP_OID = 1

_NEXT_OID_KEY = b"__next_oid"


class TangoDirectory(TangoObject):
    """Name -> OID map plus per-object forget offsets."""

    def __init__(self, runtime: TangoRuntime, host_view: bool = True) -> None:
        self._names: Dict[str, int] = {}
        self._forget_offsets: Dict[int, int] = {}
        self._next_oid = FIRST_APP_OID
        super().__init__(runtime, DIRECTORY_OID, host_view=host_view)

    # -- upcalls ---------------------------------------------------------------

    def apply(self, payload: bytes, offset: int) -> None:
        op = json.loads(payload.decode("utf-8"))
        kind = op["op"]
        if kind == "create":
            name, oid = op["name"], op["oid"]
            # First creator wins; a lost race is a no-op (the loser's
            # transaction aborted anyway under __next_oid versioning).
            if name not in self._names:
                self._names[name] = oid
            self._next_oid = max(self._next_oid, oid + 1)
        elif kind == "forget":
            oid, fo = op["oid"], op["offset"]
            if fo > self._forget_offsets.get(oid, -1):
                self._forget_offsets[oid] = fo
        elif kind == "remove":
            self._names.pop(op["name"], None)
        else:  # pragma: no cover - corrupt log entries
            raise ValueError(f"unknown directory op {kind!r}")

    def get_checkpoint(self) -> bytes:
        return json.dumps(
            {
                "names": self._names,
                "forget": {str(k): v for k, v in self._forget_offsets.items()},
                "next_oid": self._next_oid,
            }
        ).encode("utf-8")

    def load_checkpoint(self, state: bytes) -> None:
        data = json.loads(state.decode("utf-8"))
        self._names = dict(data["names"])
        self._forget_offsets = {int(k): v for k, v in data["forget"].items()}
        self._next_oid = data["next_oid"]

    # -- interface ---------------------------------------------------------------

    def lookup(self, name: str) -> Optional[int]:
        """Linearizable name lookup; None if absent."""
        self._query(key=name.encode("utf-8"))
        return self._names.get(name)

    def get_or_create(self, name: str) -> int:
        """Return the OID for *name*, allocating one if needed.

        Safe under concurrent creators: allocation serializes on the
        ``__next_oid`` key via a transaction.
        """
        existing = self.lookup(name)
        if existing is not None:
            return existing

        def attempt() -> int:
            self._query(key=name.encode("utf-8"))
            found = self._names.get(name)
            if found is not None:
                return found
            self._query(key=_NEXT_OID_KEY)
            oid = self._next_oid
            op = json.dumps({"op": "create", "name": name, "oid": oid})
            self._update(op.encode("utf-8"), key=_NEXT_OID_KEY)
            return oid

        return self._runtime.run_transaction(attempt)

    def remove(self, name: str) -> None:
        """Unbind a name (the OID and its stream remain in the log)."""
        op = json.dumps({"op": "remove", "name": name})
        self._update(op.encode("utf-8"), key=name.encode("utf-8"))

    def names(self) -> Tuple[str, ...]:
        """All currently bound names (linearizable)."""
        self._query()
        return tuple(sorted(self._names))

    def open(self, cls: Type[TangoObject], name: str, **kwargs) -> TangoObject:
        """Instantiate (and register) *cls* under the OID bound to *name*.

        Opening a name this runtime already hosts returns the existing
        view (a runtime holds at most one view per object); the extra
        keyword arguments are ignored in that case.
        """
        oid = self.get_or_create(name)
        existing = self._runtime.get_object(oid)
        if existing is not None:
            if not isinstance(existing, cls):
                raise UnknownObjectError(
                    f"name {name!r} (oid {oid}) is already hosted as "
                    f"{type(existing).__name__}, not {cls.__name__}"
                )
            return existing
        return cls(self._runtime, oid, **kwargs)

    # -- garbage collection ---------------------------------------------------------

    def forget(self, oid: int, offset: int) -> None:
        """Record that *oid* no longer needs log entries below *offset*.

        Typically called with the ``covers_offset`` of a checkpoint the
        object just took: history below the checkpoint becomes
        unreachable for rollback and reclaimable by :meth:`gc`.
        """
        op = json.dumps({"op": "forget", "oid": oid, "offset": offset})
        self._update(op.encode("utf-8"), key=f"__forget_{oid}".encode("utf-8"))

    def forget_offset(self, oid: int) -> int:
        """The registered forget offset for *oid* (-1 if none)."""
        self._query(key=f"__forget_{oid}".encode("utf-8"))
        return self._forget_offsets.get(oid, -1)

    def gc(self) -> int:
        """Trim the log below the minimum forget offset across all objects.

        Returns the trim point (0 means nothing could be reclaimed). An
        object that has never called forget pins the log, as in the
        paper: the trim point is the min across *all* live objects.
        """
        self._query()
        live_oids = set(self._names.values()) | {DIRECTORY_OID}
        offsets = [self._forget_offsets.get(oid, -1) for oid in live_oids]
        trim_point = min(offsets) if offsets else -1
        if trim_point <= 0:
            return 0
        self._runtime.streams.corfu.trim_prefix(trim_point)
        return trim_point
