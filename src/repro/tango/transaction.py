"""Transaction context objects.

Two kinds of state live here:

- :class:`TxContext` — the thread-local context created by ``BeginTX``
  on the *generating* client: the read set accumulated by accessors and
  the buffered updates accumulated by mutators ("The update_helper call
  now buffers updates instead of writing them immediately to the shared
  log", section 3.2).
- :class:`PendingTx` — the playback-side state a *consuming* client
  keeps for a transaction it has seen speculative updates (or an
  undecidable commit record) for.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.tango.records import CommitRecord, ReadSetEntry, UpdateRecord


class TxContext:
    """Generating-client state for one open transaction."""

    def __init__(self, tx_id: int) -> None:
        self.tx_id = tx_id
        self.read_set: List[ReadSetEntry] = []
        self._read_keys: set = set()
        self.updates: List[UpdateRecord] = []
        self.write_oids: List[int] = []

    def record_read(self, oid: int, key: Optional[bytes], version: int) -> None:
        """Add one accessor invocation to the read set (deduplicated).

        Only the first read of a location matters: the transaction's
        conflict window starts at the first read, and later reads of the
        same location observe the same local view.
        """
        dedup = (oid, key)
        if dedup in self._read_keys:
            return
        self._read_keys.add(dedup)
        self.read_set.append(ReadSetEntry(oid, key, version))

    def record_update(self, oid: int, payload: bytes, key: Optional[bytes]) -> None:
        """Buffer one mutator invocation (applied only if the TX commits)."""
        self.updates.append(UpdateRecord(oid, payload, key, tx_id=self.tx_id))
        if oid not in self.write_oids:
            self.write_oids.append(oid)

    @property
    def is_read_only(self) -> bool:
        return not self.updates

    @property
    def is_write_only(self) -> bool:
        return bool(self.updates) and not self.read_set

    def involved_oids(self) -> Tuple[int, ...]:
        """Read-set plus write-set object ids, reads first, deduplicated.

        The commit record is multiappended to all of these streams (as
        in Figure 6, where a TX reading A and writing C appends its
        commit and decision records to both A and C): write-set hosts
        learn the mutation, and read-set hosts can detect orphaned
        commit records and insert decisions on behalf of crashed
        generators (section 4.1, "Failure Handling").
        """
        oids: List[int] = []
        for entry in self.read_set:
            if entry.oid not in oids:
                oids.append(entry.oid)
        for oid in self.write_oids:
            if oid not in oids:
                oids.append(oid)
        return tuple(oids)


class PendingTx:
    """Consuming-client state for an in-flight transaction."""

    def __init__(self, tx_id: int) -> None:
        self.tx_id = tx_id
        # Speculative updates seen while playing, in log order.
        self.speculative: List[Tuple[int, UpdateRecord]] = []
        # Set once the commit record is encountered but cannot be
        # decided locally (awaiting a decision record).
        self.commit_offset: int = -1
        self.commit_record: Optional[CommitRecord] = None

    @property
    def awaiting_decision(self) -> bool:
        return self.commit_record is not None
