"""Record types carried in log-entry payloads.

Every entry payload appended by the Tango runtime is an encoded batch of
records (the paper batches 4 commit records per 4KB entry). Four record
kinds exist:

- :class:`UpdateRecord` — one mutator invocation: the opaque buffer the
  object handed to ``update_helper``, plus the optional fine-grained
  versioning key. A non-zero ``tx_id`` marks the update *speculative*:
  written ahead of its transaction's commit record and "not to be made
  visible by other clients playing the log until the commit record is
  encountered" (section 3.2).
- :class:`CommitRecord` — a transaction's atomic commit point: the read
  set with versions, the write-set object ids, and any inlined updates.
- :class:`DecisionRecord` — the outcome appended by the generating
  client when some consumer hosts a write-set object but not the whole
  read set (section 4.1, case C).
- :class:`CheckpointRecord` — an object-provided snapshot of a view,
  with the version state needed for conflict checks after a reload.
- :class:`DeltaCheckpointRecord` — an incremental snapshot covering only
  the keys changed since a base checkpoint, chained via ``base_offset``
  so hot objects stop serializing full state every checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.util.encoding import (
    decode_bytes,
    encode_bytes,
    pack_u16,
    pack_u32,
    pack_u64,
    unpack_u16,
    unpack_u32,
    unpack_u64,
)

_KIND_UPDATE = 1
_KIND_COMMIT = 2
_KIND_DECISION = 3
_KIND_CHECKPOINT = 4
_KIND_DELTA_CHECKPOINT = 5

#: Sentinel version for "never modified" (encodes as all-ones u64).
NO_VERSION = -1
_VERSION_NONE = 0xFFFFFFFFFFFFFFFF

#: tx_id value meaning "not part of any transaction".
NO_TX = 0


def _pack_version(buf: bytearray, version: int) -> None:
    pack_u64(buf, _VERSION_NONE if version == NO_VERSION else version)


def _unpack_version(buf: bytes, off: int) -> Tuple[int, int]:
    raw, off = unpack_u64(buf, off)
    return (NO_VERSION if raw == _VERSION_NONE else raw), off


def _pack_opt_bytes(buf: bytearray, data: Optional[bytes]) -> None:
    if data is None:
        pack_u16(buf, 0)
    else:
        pack_u16(buf, 1)
        encode_bytes(buf, data)


def _unpack_opt_bytes(buf: bytes, off: int) -> Tuple[Optional[bytes], int]:
    flag, off = unpack_u16(buf, off)
    if not flag:
        return None, off
    return decode_bytes(buf, off)


@dataclass(frozen=True)
class UpdateRecord:
    """One mutator invocation on one object."""

    oid: int
    payload: bytes
    key: Optional[bytes] = None
    tx_id: int = NO_TX

    @property
    def is_speculative(self) -> bool:
        return self.tx_id != NO_TX

    def _encode_body(self, buf: bytearray) -> None:
        pack_u32(buf, self.oid)
        pack_u64(buf, self.tx_id)
        _pack_opt_bytes(buf, self.key)
        encode_bytes(buf, self.payload)

    @staticmethod
    def _decode_body(buf: bytes, off: int) -> Tuple["UpdateRecord", int]:
        oid, off = unpack_u32(buf, off)
        tx_id, off = unpack_u64(buf, off)
        key, off = _unpack_opt_bytes(buf, off)
        payload, off = decode_bytes(buf, off)
        return UpdateRecord(oid, payload, key, tx_id), off


@dataclass(frozen=True)
class ReadSetEntry:
    """One read performed by a transaction: (object, optional key, version).

    The version is "the last offset in the shared log that modified the
    object" (or the key within the object, under fine-grained
    versioning) at the time of the read.
    """

    oid: int
    key: Optional[bytes]
    version: int

    def _encode_body(self, buf: bytearray) -> None:
        pack_u32(buf, self.oid)
        _pack_opt_bytes(buf, self.key)
        _pack_version(buf, self.version)

    @staticmethod
    def _decode_body(buf: bytes, off: int) -> Tuple["ReadSetEntry", int]:
        oid, off = unpack_u32(buf, off)
        key, off = _unpack_opt_bytes(buf, off)
        version, off = _unpack_version(buf, off)
        return ReadSetEntry(oid, key, version), off


@dataclass(frozen=True)
class CommitRecord:
    """A transaction's commit point in the total order."""

    tx_id: int
    read_set: Tuple[ReadSetEntry, ...]
    write_oids: Tuple[int, ...]
    inline_updates: Tuple[UpdateRecord, ...] = ()
    #: True when the generating client will append a decision record
    #: because some write-set object is marked as requiring one.
    decision_expected: bool = False
    #: True for the "dummy commit record designed to abort" that any
    #: client may append to terminate an orphaned transaction.
    forced_abort: bool = False

    def read_oids(self) -> Tuple[int, ...]:
        seen = []
        for entry in self.read_set:
            if entry.oid not in seen:
                seen.append(entry.oid)
        return tuple(seen)

    def _encode_body(self, buf: bytearray) -> None:
        pack_u64(buf, self.tx_id)
        flags = (1 if self.decision_expected else 0) | (
            2 if self.forced_abort else 0
        )
        pack_u16(buf, flags)
        pack_u16(buf, len(self.read_set))
        for entry in self.read_set:
            entry._encode_body(buf)
        pack_u16(buf, len(self.write_oids))
        for oid in self.write_oids:
            pack_u32(buf, oid)
        pack_u16(buf, len(self.inline_updates))
        for upd in self.inline_updates:
            upd._encode_body(buf)

    @staticmethod
    def _decode_body(buf: bytes, off: int) -> Tuple["CommitRecord", int]:
        tx_id, off = unpack_u64(buf, off)
        flags, off = unpack_u16(buf, off)
        nreads, off = unpack_u16(buf, off)
        reads = []
        for _ in range(nreads):
            entry, off = ReadSetEntry._decode_body(buf, off)
            reads.append(entry)
        nwrites, off = unpack_u16(buf, off)
        writes = []
        for _ in range(nwrites):
            oid, off = unpack_u32(buf, off)
            writes.append(oid)
        nupd, off = unpack_u16(buf, off)
        updates = []
        for _ in range(nupd):
            upd, off = UpdateRecord._decode_body(buf, off)
            updates.append(upd)
        record = CommitRecord(
            tx_id,
            tuple(reads),
            tuple(writes),
            tuple(updates),
            decision_expected=bool(flags & 1),
            forced_abort=bool(flags & 2),
        )
        return record, off


@dataclass(frozen=True)
class DecisionRecord:
    """The generating client's commit/abort verdict for one transaction."""

    tx_id: int
    committed: bool

    def _encode_body(self, buf: bytearray) -> None:
        pack_u64(buf, self.tx_id)
        pack_u16(buf, 1 if self.committed else 0)

    @staticmethod
    def _decode_body(buf: bytes, off: int) -> Tuple["DecisionRecord", int]:
        tx_id, off = unpack_u64(buf, off)
        committed, off = unpack_u16(buf, off)
        return DecisionRecord(tx_id, bool(committed)), off


@dataclass(frozen=True)
class CheckpointRecord:
    """An object snapshot stored in the log (section 3.1, "History").

    ``covers_offset`` is the highest log offset whose effects are folded
    into ``state``; a fresh view loads the state and then plays the
    stream from the first entry above ``covers_offset``. The version
    tables travel with the snapshot so that transaction conflict checks
    remain correct after a reload.
    """

    oid: int
    covers_offset: int
    object_version: int
    key_versions: Tuple[Tuple[bytes, int], ...]
    state: bytes
    #: Last offset of an *unkeyed* modification, carried exactly so that
    #: a reloaded view makes bit-identical commit/abort decisions.
    unkeyed_version: int = NO_VERSION
    #: Version-eviction horizon of the writer's table (memory-bounded
    #: mode): keys absent from ``key_versions`` but present in
    #: ``evicted_filter`` are conservatively at this version.
    version_floor: int = NO_VERSION
    #: Serialized evicted-key filter (empty when nothing was evicted).
    evicted_filter: bytes = b""

    def _encode_body(self, buf: bytearray) -> None:
        pack_u32(buf, self.oid)
        _pack_version(buf, self.covers_offset)
        _pack_version(buf, self.object_version)
        _pack_version(buf, self.unkeyed_version)
        pack_u32(buf, len(self.key_versions))
        for key, version in self.key_versions:
            encode_bytes(buf, key)
            _pack_version(buf, version)
        encode_bytes(buf, self.state)
        _pack_version(buf, self.version_floor)
        encode_bytes(buf, self.evicted_filter)

    @staticmethod
    def _decode_body(buf: bytes, off: int) -> Tuple["CheckpointRecord", int]:
        oid, off = unpack_u32(buf, off)
        covers, off = _unpack_version(buf, off)
        obj_version, off = _unpack_version(buf, off)
        unkeyed, off = _unpack_version(buf, off)
        nkeys, off = unpack_u32(buf, off)
        keys = []
        for _ in range(nkeys):
            key, off = decode_bytes(buf, off)
            version, off = _unpack_version(buf, off)
            keys.append((key, version))
        state, off = decode_bytes(buf, off)
        floor, off = _unpack_version(buf, off)
        evicted, off = decode_bytes(buf, off)
        record = CheckpointRecord(
            oid,
            covers,
            obj_version,
            tuple(keys),
            state,
            unkeyed_version=unkeyed,
            version_floor=floor,
            evicted_filter=evicted,
        )
        return record, off


@dataclass(frozen=True)
class DeltaCheckpointRecord:
    """An incremental checkpoint: changes since a base checkpoint.

    ``base_offset`` names the log offset of the record this delta builds
    on — a full :class:`CheckpointRecord` or an earlier delta, forming a
    chain back to a full base. A loader applies the base's state, then
    each delta's ``state`` oldest-first (the object's
    ``load_checkpoint_delta`` upcall), and overlays ``key_versions`` the
    same way. ``depth`` is this record's distance from the full base
    (1 = directly on a full checkpoint); the runtime caps it so chains
    stay cheap to reconstruct.
    """

    oid: int
    base_offset: int
    covers_offset: int
    object_version: int
    key_versions: Tuple[Tuple[bytes, int], ...]
    state: bytes
    unkeyed_version: int = NO_VERSION
    version_floor: int = NO_VERSION
    evicted_filter: bytes = b""
    depth: int = 1

    def _encode_body(self, buf: bytearray) -> None:
        pack_u32(buf, self.oid)
        pack_u64(buf, self.base_offset)
        _pack_version(buf, self.covers_offset)
        _pack_version(buf, self.object_version)
        _pack_version(buf, self.unkeyed_version)
        pack_u16(buf, self.depth)
        pack_u32(buf, len(self.key_versions))
        for key, version in self.key_versions:
            encode_bytes(buf, key)
            _pack_version(buf, version)
        encode_bytes(buf, self.state)
        _pack_version(buf, self.version_floor)
        encode_bytes(buf, self.evicted_filter)

    @staticmethod
    def _decode_body(
        buf: bytes, off: int
    ) -> Tuple["DeltaCheckpointRecord", int]:
        oid, off = unpack_u32(buf, off)
        base, off = unpack_u64(buf, off)
        covers, off = _unpack_version(buf, off)
        obj_version, off = _unpack_version(buf, off)
        unkeyed, off = _unpack_version(buf, off)
        depth, off = unpack_u16(buf, off)
        nkeys, off = unpack_u32(buf, off)
        keys = []
        for _ in range(nkeys):
            key, off = decode_bytes(buf, off)
            version, off = _unpack_version(buf, off)
            keys.append((key, version))
        state, off = decode_bytes(buf, off)
        floor, off = _unpack_version(buf, off)
        evicted, off = decode_bytes(buf, off)
        record = DeltaCheckpointRecord(
            oid,
            base,
            covers,
            obj_version,
            tuple(keys),
            state,
            unkeyed_version=unkeyed,
            version_floor=floor,
            evicted_filter=evicted,
            depth=depth,
        )
        return record, off


Record = Union[
    UpdateRecord,
    CommitRecord,
    DecisionRecord,
    CheckpointRecord,
    DeltaCheckpointRecord,
]

_KIND_OF = {
    UpdateRecord: _KIND_UPDATE,
    CommitRecord: _KIND_COMMIT,
    DecisionRecord: _KIND_DECISION,
    CheckpointRecord: _KIND_CHECKPOINT,
    DeltaCheckpointRecord: _KIND_DELTA_CHECKPOINT,
}

_DECODER_OF = {
    _KIND_UPDATE: UpdateRecord._decode_body,
    _KIND_COMMIT: CommitRecord._decode_body,
    _KIND_DECISION: DecisionRecord._decode_body,
    _KIND_CHECKPOINT: CheckpointRecord._decode_body,
    _KIND_DELTA_CHECKPOINT: DeltaCheckpointRecord._decode_body,
}


def encode_records(records: List[Record]) -> bytes:
    """Serialize a batch of records into one entry payload."""
    buf = bytearray()
    pack_u16(buf, len(records))
    for record in records:
        pack_u16(buf, _KIND_OF[type(record)])
        record._encode_body(buf)
    return bytes(buf)


def decode_records(payload: bytes) -> List[Record]:
    """Deserialize an entry payload back into its record batch."""
    if not payload:
        return []
    count, off = unpack_u16(payload, 0)
    records: List[Record] = []
    for _ in range(count):
        kind, off = unpack_u16(payload, off)
        decoder = _DECODER_OF.get(kind)
        if decoder is None:
            raise ValueError(f"unknown record kind {kind}")
        record, off = decoder(payload, off)
        records.append(record)
    return records
